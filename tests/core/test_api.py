"""Tests for the unified request/response surface (repro.core.api)."""

import pytest

from repro.geometry import Rect
from repro.core import (
    CacheEntry,
    KNNRequest,
    LocationServer,
    QueryResponse,
    RangeRequest,
    WindowRequest,
    compute_nn_validity,
    compute_range_validity,
    compute_window_validity,
)

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


@pytest.fixture()
def server(small_tree):
    return LocationServer(small_tree, UNIT)


class TestRequests:
    def test_kinds(self):
        assert KNNRequest((0.5, 0.5)).kind == "knn"
        assert WindowRequest((0.5, 0.5), 0.1, 0.1).kind == "window"
        assert RangeRequest((0.5, 0.5), 0.1).kind == "range"

    def test_validation(self):
        with pytest.raises(ValueError):
            KNNRequest((0.5, 0.5), k=0)
        with pytest.raises(ValueError):
            WindowRequest((0.5, 0.5), 0.0, 0.1)
        with pytest.raises(ValueError):
            RangeRequest((0.5, 0.5), -1.0)

    def test_requests_are_frozen_and_hashable(self):
        r = KNNRequest((0.5, 0.5), k=3)
        with pytest.raises(AttributeError):
            r.k = 4
        assert hash(r) == hash(KNNRequest((0.5, 0.5), k=3))

    def test_previous_ids_normalized_to_tuple(self):
        r = KNNRequest((0.5, 0.5), k=2, previous_ids=iter([3, 1, 2]))
        assert r.previous_ids == (3, 1, 2)

    def test_as_delta_round_trip(self):
        base = WindowRequest((0.5, 0.5), 0.1, 0.2)
        delta = base.as_delta({4, 5})
        assert delta.kind == "window"
        assert sorted(delta.previous_ids) == [4, 5]
        assert base.previous_ids is None  # original untouched


class TestAnswerDispatch:
    def test_knn_answer_matches_validity_computation(self, server):
        unified = server.answer(KNNRequest((0.4, 0.6), k=4))
        direct = compute_nn_validity(server.tree, (0.4, 0.6), k=4)
        assert [e.oid for e in unified.result] == [
            e.oid for e in direct.neighbors]
        assert unified.transfer_bytes() > 0

    def test_window_answer_matches_validity_computation(self, server):
        unified = server.answer(WindowRequest((0.5, 0.5), 0.2, 0.1))
        direct = compute_window_validity(server.tree, (0.5, 0.5), 0.2, 0.1,
                                         universe=server.universe)
        assert ({e.oid for e in unified.result}
                == {e.oid for e in direct.result})

    def test_range_answer_matches_validity_computation(self, server):
        unified = server.answer(RangeRequest((0.5, 0.5), 0.08))
        direct = compute_range_validity(server.tree, (0.5, 0.5), 0.08)
        assert ({e.oid for e in unified.result}
                == {e.oid for e in direct.result})

    def test_delta_dispatch_from_previous_ids(self, server):
        first = server.answer(KNNRequest((0.3, 0.3), k=5))
        prev = tuple(e.oid for e in first.result)
        delta = server.answer(KNNRequest((0.32, 0.3), k=5,
                                         previous_ids=prev))
        assert hasattr(delta, "added") and hasattr(delta, "removed_ids")
        current = {e.oid for e in delta.full.neighbors}
        assert {e.oid for e in delta.added} == current - set(prev)

    def test_unknown_request_rejected(self, server):
        with pytest.raises(TypeError):
            server.answer("knn at (0.5, 0.5)")


class TestQueryResponseProtocol:
    def test_every_response_satisfies_protocol(self, server):
        responses = [
            server.answer(KNNRequest((0.5, 0.5), k=2)),
            server.answer(WindowRequest((0.5, 0.5), 0.1, 0.1)),
            server.answer(RangeRequest((0.5, 0.5), 0.1)),
        ]
        responses.append(server.answer(KNNRequest(
            (0.51, 0.5), k=2,
            previous_ids=[e.oid for e in responses[0].result])))
        for resp in responses:
            assert isinstance(resp, QueryResponse)
            assert isinstance(resp.result, list)
            assert resp.transfer_bytes() > 0
            assert resp.detail is not None
            # Every region supports the client-side validity check.
            assert isinstance(resp.region.contains((0.5, 0.5)), bool)

    def test_knn_result_aliases_neighbors(self, server):
        resp = server.answer(KNNRequest((0.7, 0.2), k=3))
        assert resp.result is resp.neighbors

    def test_delta_response_delegates_to_full(self, server):
        first = server.answer(WindowRequest((0.5, 0.5), 0.2, 0.2))
        delta = server.answer(WindowRequest(
            (0.5, 0.5), 0.2, 0.2,
            previous_ids=tuple(e.oid for e in first.result)))
        assert delta.result == delta.full.result
        assert delta.region is delta.full.region
        assert delta.detail is delta.full.detail


class TestCacheEntry:
    def test_answers_checks_key_and_region(self, server):
        resp = server.answer(KNNRequest((0.5, 0.5), k=2))
        entry = CacheEntry(key=(2,), response=resp,
                           entries=list(resp.result), epoch=server.epoch)
        assert entry.answers((2,), (0.5, 0.5))
        assert not entry.answers((3,), (0.5, 0.5))  # different k

    def test_client_exposes_typed_cache_entries(self, server):
        from repro.core import MobileClient
        client = MobileClient(server)
        assert client.cache_entry("knn") is None
        client.knn((0.5, 0.5), k=2)
        entry = client.cache_entry("knn")
        assert entry is not None
        assert entry.key == (2,)
        assert entry.epoch == server.epoch
        assert len(entry.entries) == 2
