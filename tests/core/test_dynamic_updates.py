"""Tests for dataset updates and epoch-based cache invalidation."""

import math

import pytest

from repro.geometry import Rect
from repro.index import bulk_load_str
from repro.core import LocationServer, MobileClient
from repro.core.api import KNNRequest

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


@pytest.fixture()
def server():
    tree = bulk_load_str([(0.2, 0.2), (0.8, 0.8), (0.5, 0.9)], capacity=4)
    return LocationServer(tree, UNIT)


class TestServerUpdates:
    def test_insert_bumps_epoch(self, server):
        before = server.epoch
        server.insert_object(100, 0.51, 0.49)
        assert server.epoch == before + 1
        assert len(server.tree) == 4

    def test_delete_bumps_epoch(self, server):
        server.delete_object(0, 0.2, 0.2)
        assert server.epoch == 1
        assert len(server.tree) == 2

    def test_failed_delete_keeps_epoch(self, server):
        assert not server.delete_object(99, 0.1, 0.1)
        assert server.epoch == 0

    def test_queries_reflect_updates(self, server):
        nearest = lambda: server.answer(
            KNNRequest((0.5, 0.5))).neighbors[0].oid
        assert nearest() in {0, 1, 2}
        server.insert_object(100, 0.5, 0.5)
        assert nearest() == 100
        server.delete_object(100, 0.5, 0.5)
        assert nearest() != 100


class TestClientInvalidation:
    def test_knn_cache_dropped_after_insert(self, server):
        client = MobileClient(server)
        first = client.knn((0.45, 0.45))
        assert first[0].oid == 0
        # A new point appears right under the client: the cached region
        # (computed before the update) must not serve a stale answer.
        server.insert_object(100, 0.45, 0.46)
        second = client.knn((0.45, 0.45))
        assert second[0].oid == 100
        assert client.stats.server_queries == 2
        assert client.stats.cache_answers == 0

    def test_window_cache_dropped_after_delete(self, server):
        client = MobileClient(server)
        first = client.window((0.2, 0.2), 0.2, 0.2)
        assert [e.oid for e in first] == [0]
        server.delete_object(0, 0.2, 0.2)
        second = client.window((0.2, 0.2), 0.2, 0.2)
        assert second == []

    def test_range_cache_dropped_after_insert(self, server):
        client = MobileClient(server)
        assert client.range((0.5, 0.5), 0.1) == []
        server.insert_object(100, 0.52, 0.5)
        assert [e.oid for e in client.range((0.5, 0.5), 0.1)] == [100]

    def test_cache_still_used_without_updates(self, server):
        client = MobileClient(server)
        client.knn((0.45, 0.45))
        client.knn((0.45 + 1e-9, 0.45))
        assert client.stats.cache_answers == 1

    def test_incremental_client_survives_updates(self, server):
        client = MobileClient(server, incremental=True)
        client.window((0.5, 0.5), 0.4, 0.4)
        server.insert_object(100, 0.5, 0.5)
        got = client.window((0.5, 0.5), 0.4, 0.4)
        assert 100 in {e.oid for e in got}

    def test_many_updates_many_epochs(self, server):
        client = MobileClient(server)
        for i in range(10):
            server.insert_object(200 + i, 0.1 + i * 0.05, 0.9)
            client.knn((0.45, 0.45))
        assert server.epoch == 10
        assert client.stats.server_queries == 10  # no stale cache hits
