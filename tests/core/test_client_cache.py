"""Delta-protocol and epoch-invalidation paths of the mobile client.

The incremental client keeps a delta base (its cached entry list) that
must be abandoned — not patched — whenever the dataset changes under
it, and an incremental re-query must leave the client with exactly the
state a from-scratch client would hold.  These tests pin those paths
down, including the interleavings of updates and re-queries.
"""

import pytest

from repro.geometry import Rect
from repro.index import bulk_load_str
from repro.core import LocationServer, MobileClient
from repro.core.api import KNNRequest, WindowRequest
from tests.conftest import brute_knn_set, brute_window

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


@pytest.fixture()
def points(rng):
    return [(rng.random(), rng.random()) for _ in range(300)]


@pytest.fixture()
def server(points):
    return LocationServer(bulk_load_str(points, capacity=8), UNIT)


class TestIncrementalEpochInvalidation:
    def test_insert_drops_delta_base_knn(self, server, points):
        client = MobileClient(server, incremental=True)
        client.knn((0.5, 0.5), k=5)
        bytes_before = client.stats.bytes_received
        server.insert_object(len(points), 0.5001, 0.5001)
        pts = points + [(0.5001, 0.5001)]
        got = {e.oid for e in client.knn((0.5, 0.5), k=5)}
        assert got == brute_knn_set(pts, (0.5, 0.5), 5)
        # The re-query was answered with a *full* response (the delta
        # base died with the epoch), so it cost full-response bytes.
        full_cost = client.stats.bytes_received - bytes_before
        assert full_cost == server.answer(
            KNNRequest((0.5, 0.5), k=5)).transfer_bytes()
        assert client.stats.cache_answers == 0

    def test_delete_drops_delta_base_window(self, server, points):
        client = MobileClient(server, incremental=True)
        first = client.window((0.5, 0.5), 0.2, 0.2)
        victim = first[0]
        assert server.delete_object(victim.oid, victim.x, victim.y)
        pts = {i: p for i, p in enumerate(points) if i != victim.oid}
        got = sorted(e.oid for e in client.window((0.5, 0.5), 0.2, 0.2))
        expected = sorted(
            i for i, p in pts.items()
            if Rect.around((0.5, 0.5), 0.2, 0.2).contains_point(p))
        assert got == expected
        assert victim.oid not in got

    def test_cache_entry_epoch_recorded(self, server):
        client = MobileClient(server, incremental=True)
        client.knn((0.5, 0.5), k=3)
        assert client.cache_entry("knn").epoch == server.epoch
        server.insert_object(9999, 0.9, 0.9)
        client.knn((0.5, 0.5), k=3)
        assert client.cache_entry("knn").epoch == server.epoch

    def test_range_cache_dropped_on_update(self, server, points):
        client = MobileClient(server)
        client.range((0.5, 0.5), 0.1)
        server.insert_object(len(points), 0.5, 0.5)
        got = {e.oid for e in client.range((0.5, 0.5), 0.1)}
        assert len(points) in got  # the fresh point is seen
        assert client.stats.server_queries == 2


class TestIncrementalReQuery:
    def test_knn_delta_state_equals_fresh_client(self, server):
        inc = MobileClient(server, incremental=True)
        inc.knn((0.30, 0.30), k=6)
        inc.knn((0.60, 0.55), k=6)  # far: large delta
        fresh = MobileClient(server)
        expected = fresh.knn((0.60, 0.55), k=6)
        assert (sorted(e.oid for e in inc.cache_entry("knn").entries)
                == sorted(e.oid for e in expected))
        assert ({e.oid for e in inc.knn((0.60, 0.55), k=6)}
                == {e.oid for e in expected})

    def test_window_delta_requires_matching_extents(self, server):
        inc = MobileClient(server, incremental=True)
        inc.window((0.5, 0.5), 0.1, 0.1)
        before = inc.stats.bytes_received
        # Different extents: the cached base is for another query shape,
        # so this must be a full response, not a delta.
        resp_cost = server.answer(WindowRequest((0.5, 0.5), 0.3, 0.3))
        inc.window((0.5, 0.5), 0.3, 0.3)
        assert (inc.stats.bytes_received - before
                == resp_cost.transfer_bytes())

    def test_incremental_matches_brute_force_under_updates(self, server,
                                                           points, rng):
        client = MobileClient(server, incremental=True)
        live = dict(enumerate(points))
        next_oid = len(points)
        pos = [0.5, 0.5]
        for step in range(30):
            pos[0] = min(max(pos[0] + rng.uniform(-0.03, 0.03), 0.0), 1.0)
            pos[1] = min(max(pos[1] + rng.uniform(-0.03, 0.03), 0.0), 1.0)
            if step % 7 == 3:
                p = (rng.random(), rng.random())
                server.insert_object(next_oid, *p)
                live[next_oid] = p
                next_oid += 1
            if step % 11 == 5 and live:
                oid = rng.choice(sorted(live))
                server.delete_object(oid, *live[oid])
                del live[oid]
            got = sorted(e.oid for e in client.window(tuple(pos), 0.15, 0.15))
            window = Rect.around(tuple(pos), 0.15, 0.15)
            expected = sorted(i for i, p in live.items()
                              if window.contains_point(p))
            assert got == expected


class TestStatsAccounting:
    def test_counts_split_between_cache_and_server(self, server):
        client = MobileClient(server)
        client.knn((0.5, 0.5), k=1)
        client.knn((0.5 + 1e-9, 0.5), k=1)
        client.knn((0.5, 0.5 - 1e-9), k=1)
        stats = client.stats
        assert stats.position_updates == 3
        assert stats.server_queries == 1
        assert stats.cache_answers == 2
        assert stats.query_saving == pytest.approx(2 / 3)

    def test_invalidate_cache_forces_requery(self, server):
        client = MobileClient(server)
        client.window((0.5, 0.5), 0.1, 0.1)
        client.invalidate_cache()
        assert client.cache_entry("window") is None
        client.window((0.5, 0.5), 0.1, 0.1)
        assert client.stats.server_queries == 2
