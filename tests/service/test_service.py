"""Tests for the instrumented query service and the simulated fleet."""

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import (
    KNNRequest,
    LocationServer,
    MobileClient,
    RangeRequest,
    WindowRequest,
)
from repro.geometry import Rect
from repro.service import ClientFleet, FleetConfig, MetricsRegistry, QueryService

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


@pytest.fixture()
def service(small_tree):
    return QueryService(LocationServer(small_tree, UNIT))


class TestAnswerParity:
    """The service returns exactly what the bare server returns."""

    def test_knn_matches_server(self, small_tree, service):
        direct = LocationServer(small_tree, UNIT).answer(
            KNNRequest((0.4, 0.4), k=5))
        via = service.answer(KNNRequest((0.4, 0.4), k=5))
        assert [e.oid for e in via.result] == [e.oid for e in direct.result]
        assert via.transfer_bytes() == direct.transfer_bytes()

    def test_window_matches_server(self, small_tree, service):
        direct = LocationServer(small_tree, UNIT).answer(
            WindowRequest((0.5, 0.5), 0.2, 0.2))
        via = service.window_query((0.5, 0.5), 0.2, 0.2)
        assert ({e.oid for e in via.result}
                == {e.oid for e in direct.result})

    def test_range_matches_server(self, small_tree, service):
        direct = LocationServer(small_tree, UNIT).answer(
            RangeRequest((0.5, 0.5), 0.1))
        via = service.range_query((0.5, 0.5), 0.1)
        assert ({e.oid for e in via.result}
                == {e.oid for e in direct.result})


class TestTracing:
    def test_knn_trace_has_all_stages(self, service):
        service.answer(KNNRequest((0.5, 0.5), k=3))
        [trace] = service.recent_traces()
        names = [s.name for s in trace.spans]
        assert "index_descent" in names
        assert "tpnn_probing" in names
        assert "bisector_clipping" in names
        assert "serialization" in names
        assert trace.kind == "knn"
        assert trace.duration_ms > 0
        assert trace.result_size == 3

    def test_trace_node_accesses_match_phase_counters(self, service):
        service.server.reset_io_stats()
        service.answer(WindowRequest((0.5, 0.5), 0.2, 0.2))
        [trace] = service.recent_traces()
        legacy = service.server.io_stats.node_accesses_by_phase()
        assert trace.node_accesses == {
            phase: count for phase, count in legacy.items() if count
        }
        assert trace.total_node_accesses > 0

    def test_trace_id_passthrough(self, service):
        service.answer(RangeRequest((0.5, 0.5), 0.1, trace_id="abc-1"))
        [trace] = service.recent_traces()
        assert trace.trace_id == "abc-1"

    def test_trace_as_dict_is_json_serializable(self, service):
        service.answer(KNNRequest((0.2, 0.8), k=2))
        [trace] = service.recent_traces()
        json.dumps(trace.as_dict())

    def test_trace_buffer_is_bounded(self, small_tree):
        svc = QueryService(LocationServer(small_tree, UNIT),
                           trace_capacity=5)
        for i in range(12):
            svc.answer(RangeRequest((0.5, 0.5), 0.05))
        assert len(svc.recent_traces()) == 5
        assert svc.traces.dropped > 0

    def test_failed_query_is_traced_as_error(self, service):
        class Bogus:
            kind = "bogus"
            trace_id = None

        with pytest.raises(TypeError):
            service.answer(Bogus())
        counters = service.metrics.snapshot()["counters"]
        assert counters["service.errors"] == 1
        assert counters['service.errors{query_kind="bogus"}'] == 1
        [trace] = service.recent_traces()
        assert trace.error is not None and "TypeError" in trace.error

    def test_non_request_object_is_traced_too(self, service):
        """Even a plain string reaches the traced rejection path."""
        with pytest.raises(TypeError):
            service.answer("knn at (0.5, 0.5)")
        counters = service.metrics.snapshot()["counters"]
        assert counters["service.errors"] == 1
        assert counters['service.errors{query_kind="str"}'] == 1
        [trace] = service.recent_traces()
        assert trace.kind == "str" and "TypeError" in trace.error


class TestMetricsConsistency:
    """Single-threaded run: service numbers equal the legacy counters."""

    def test_node_access_counters_match_legacy(self, small_tree):
        svc = QueryService(LocationServer(small_tree, UNIT))
        svc.server.reset_io_stats()
        for x in (0.2, 0.4, 0.6, 0.8):
            svc.answer(KNNRequest((x, x), k=3))
            svc.answer(WindowRequest((x, 1 - x), 0.1, 0.1))
            svc.answer(RangeRequest((1 - x, x), 0.05))
        legacy = svc.server.io_stats.node_accesses_by_phase()
        counters = svc.metrics.snapshot()["counters"]
        for phase, count in legacy.items():
            assert counters[f'service.node_accesses{{phase="{phase}"}}'] \
                == count
        assert counters["service.queries"] == 12
        assert counters['service.queries{query_kind="knn"}'] == 4

    def test_bytes_on_wire_matches_responses(self, small_tree):
        svc = QueryService(LocationServer(small_tree, UNIT))
        total = 0
        for x in (0.3, 0.5, 0.7):
            total += svc.answer(KNNRequest((x, x), k=2)).transfer_bytes()
        counters = svc.metrics.snapshot()["counters"]
        assert counters["service.bytes_on_wire"] == total

    def test_latency_histograms_per_query_type(self, small_tree):
        svc = QueryService(LocationServer(small_tree, UNIT))
        svc.answer(KNNRequest((0.5, 0.5)))
        svc.answer(WindowRequest((0.5, 0.5), 0.1, 0.1))
        for kind in ("knn", "window"):
            h = svc.metrics.histogram_merged("service.latency_ms",
                                             query_kind=kind)
            assert h["count"] == 1
            assert h["p50"] > 0
            assert h["p99"] >= h["p95"] >= h["p50"]


class TestSnapshot:
    def test_snapshot_shape_and_serializability(self, small_tree):
        svc = QueryService(LocationServer(small_tree, UNIT))
        svc.answer(KNNRequest((0.5, 0.5), k=3))
        snap = svc.stats_snapshot()
        json.dumps(snap)
        assert snap["service"]["queries"] == 1
        assert snap["service"]["bytes_on_wire"] > 0
        assert snap["disk"]["total_node_accesses"] > 0
        assert snap["server"]["num_points"] == 1000
        assert ('service.latency_ms{degraded="false",query_kind="knn"}'
                in snap["metrics"]["histograms"])

    def test_buffer_layer_reports_into_snapshot(self, uniform_1k):
        from repro.index import bulk_load_str
        tree = bulk_load_str(uniform_1k, capacity=16)
        tree.attach_lru_buffer(0.5)
        svc = QueryService(LocationServer(tree, UNIT))
        for x in (0.4, 0.41, 0.42):
            svc.answer(KNNRequest((x, 0.5), k=2))
        buf = svc.stats_snapshot()["buffer"]
        assert buf is not None
        assert buf["hits"] + buf["misses"] > 0
        assert 0.0 <= buf["hit_ratio"] <= 1.0

    def test_cache_hit_ratio_from_client_counters(self, small_tree):
        svc = QueryService(LocationServer(small_tree, UNIT))
        client = MobileClient(svc, metrics=svc.metrics)
        client.knn((0.5, 0.5), k=1)
        client.knn((0.5 + 1e-9, 0.5), k=1)  # inside the region: cache hit
        snap = svc.stats_snapshot()
        assert snap["service"]["cache_hit_ratio"] == 0.5


class TestBatchedDispatch:
    def test_batch_preserves_order_and_results(self, small_tree, service):
        requests = [KNNRequest((0.1 * i, 0.1 * i), k=2) for i in range(1, 9)]
        direct = [LocationServer(small_tree, UNIT).answer(r)
                  for r in requests]
        with ThreadPoolExecutor(max_workers=8) as pool:
            batched = service.dispatch_batch(requests, executor=pool)
        for a, b in zip(batched, direct):
            assert [e.oid for e in a.result] == [e.oid for e in b.result]

    def test_batch_metrics(self, service):
        service.dispatch_batch([RangeRequest((0.5, 0.5), 0.05)] * 4)
        counters = service.metrics.snapshot()["counters"]
        assert counters["service.batches"] == 1
        hist = service.metrics.snapshot()["histograms"]["service.batch_size"]
        assert hist["count"] == 1 and hist["max"] == 4


class TestFleet:
    def test_eight_thread_fleet_end_to_end(self, small_tree):
        svc = QueryService(LocationServer(small_tree, UNIT))
        fleet = ClientFleet(svc, FleetConfig(num_clients=12, seed=5,
                                             incremental_share=0.25))
        report = fleet.run(ticks=10, max_workers=8)
        stats = report.stats
        assert stats.position_updates == 120
        assert (stats.cache_answers + stats.server_queries
                == stats.position_updates)
        snap = report.snapshot
        json.dumps(snap)
        counters = snap["metrics"]["counters"]
        assert counters["fleet.ticks"] == 10
        assert counters["client.position_updates"] == 120
        # Client-side and service-side accounting agree.
        assert counters["client.server_queries"] == counters["service.queries"]
        assert counters["client.bytes_received"] == counters[
            "service.bytes_on_wire"]
        assert snap["service"]["cache_hit_ratio"] == pytest.approx(
            stats.cache_answers / stats.position_updates)

    def test_fleet_results_match_single_threaded_rerun(self, small_tree):
        """Concurrency must not change any answer."""
        def run(workers):
            svc = QueryService(LocationServer(small_tree, UNIT))
            fleet = ClientFleet(svc, FleetConfig(num_clients=8, seed=11))
            report = fleet.run(ticks=6, max_workers=workers)
            return report.stats

        eight = run(8)
        one = run(1)
        assert eight.server_queries == one.server_queries
        assert eight.cache_answers == one.cache_answers
        assert eight.bytes_received == one.bytes_received

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(num_clients=0)
        with pytest.raises(ValueError):
            FleetConfig(knn_share=0.8, window_share=0.4)
        with pytest.raises(ValueError):
            FleetConfig(incremental_share=1.5)

    def test_fleet_mix_covers_all_kinds(self, small_tree):
        svc = QueryService(LocationServer(small_tree, UNIT))
        fleet = ClientFleet(svc, FleetConfig(num_clients=10, seed=1))
        report = fleet.run(ticks=3, max_workers=8)
        assert set(report.mix) == {"knn", "window", "range"}
        assert sum(report.mix.values()) == 10

    def test_updates_through_service_bump_epoch(self):
        from repro.index import bulk_load_str
        tree = bulk_load_str([(0.2, 0.2), (0.8, 0.8), (0.5, 0.9)], capacity=4)
        svc = QueryService(LocationServer(tree, UNIT))
        before = svc.epoch
        svc.insert_object(10_000, 0.123, 0.456)
        assert svc.epoch == before + 1
        assert svc.delete_object(10_000, 0.123, 0.456)
        assert svc.epoch == before + 2
