"""Equivalence of execution backends and geometry kernels.

The :class:`~repro.kernel.ExecutionConfig` contract is that *how* a
query executes never changes *what* it answers:

* the ``thread`` and ``process`` shard backends return identical
  results, identical degraded flags, and identical validity regions —
  the process workers rebuild every shard tree page-for-page from its
  serialized image, so even the traversal-dependent tie-breaks agree;
* the ``scalar``, ``soa`` and ``numpy`` kernels return the same
  neighbour lists, and each kernel's validity region is *sound*: at
  random probe points inside it, the brute-force answer equals the
  cached one (the oracle style of tests/core/test_validity_oracle.py).

The chaos-marked test checks the isolation property of the process
backend: a fully faulted parent-side disk cannot touch queries whose
shard jobs all run in pool workers (the workers own private rebuilt
trees), while the thread backend — probing the same poisoned disks —
fails.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.server import LocationServer
from repro.kernel import ExecutionConfig, resolve_kernel_name
from repro.kernel.backends import get_kernel
from repro.kernel.config import numpy_enabled
from repro.service.shard import ShardedServer
from repro.core.api import KNNRequest, RangeRequest, WindowRequest

from tests.conftest import UNIT, brute_knn_set, brute_window

seeds = st.integers(min_value=0, max_value=2**31 - 1)
coords = st.floats(min_value=0.02, max_value=0.98)
ks = st.integers(min_value=1, max_value=6)

N = 300


def _points(seed: int, n: int = N):
    rnd = random.Random(seed)
    return [(rnd.random(), rnd.random()) for _ in range(n)]


def _kernel_names():
    names = ["scalar", "soa"]
    if numpy_enabled():
        names.append("numpy")
    return names


# ----------------------------------------------------------------------
# kernels: scalar vs soa vs numpy on a single-tree server
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def kernel_servers():
    points = _points(101)
    return points, {
        name: LocationServer.from_points(points, universe=UNIT, kernel=name)
        for name in _kernel_names()
    }


class TestKernelEquivalence:
    @given(qx=coords, qy=coords, k=ks)
    @settings(deadline=None, max_examples=25)
    def test_knn_results_and_sound_regions(self, kernel_servers,
                                           qx, qy, k):
        points, servers = kernel_servers
        responses = {name: server.answer(KNNRequest((qx, qy), k=k))
                     for name, server in servers.items()}
        baseline = responses["scalar"]
        expected = [e.oid for e in baseline.neighbors]
        rnd = random.Random(int(qx * 1e6) ^ int(qy * 1e6) ^ k)
        for name, resp in responses.items():
            assert [e.oid for e in resp.neighbors] == expected, name
            region = resp.region
            assert region.contains((qx, qy)), name
            # Soundness oracle: anywhere inside the shipped region the
            # brute-force kNN set must equal the cached one.
            cached = set(expected)
            for _ in range(8):
                angle = rnd.uniform(0.0, 2.0 * math.pi)
                # Walk outward until we exit the region; probe inside.
                step = 0.02
                probe = (qx + step * math.cos(angle),
                         qy + step * math.sin(angle))
                while not region.contains(probe) and step > 1e-5:
                    step /= 2.0
                    probe = (qx + step * math.cos(angle),
                             qy + step * math.sin(angle))
                if not region.contains(probe):
                    continue
                got = brute_knn_set(points, probe, k)
                if got != cached:
                    # Tolerate exact distance ties at the k-boundary.
                    dists = sorted(math.dist(p, probe) for p in points)
                    assert math.isclose(dists[k - 1], dists[k],
                                        rel_tol=1e-9, abs_tol=1e-12), (
                        f"{name}: result changed inside region at {probe}")

    @given(qx=coords, qy=coords)
    @settings(deadline=None, max_examples=15)
    def test_window_and_range_match_scalar(self, kernel_servers, qx, qy):
        points, servers = kernel_servers
        baseline = servers["scalar"]
        w = baseline.answer(WindowRequest((qx, qy), 0.2, 0.15))
        r = baseline.answer(RangeRequest((qx, qy), 0.1))
        for name, server in servers.items():
            if name == "scalar":
                continue
            w2 = server.answer(WindowRequest((qx, qy), 0.2, 0.15))
            r2 = server.answer(RangeRequest((qx, qy), 0.1))
            assert [e.oid for e in w2.result] == [e.oid for e in w.result]
            assert [e.oid for e in r2.result] == [e.oid for e in r.result]
            assert (w2.detail.conservative_region
                    == w.detail.conservative_region)
            assert r2.detail.validity_radius == pytest.approx(
                r.detail.validity_radius)


# ----------------------------------------------------------------------
# backends: thread vs process on a sharded server
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def backend_servers():
    points = _points(202, n=600)
    thread = ShardedServer.from_points(
        points, grid=3, universe=UNIT,
        execution=ExecutionConfig(backend="thread", kernel="auto"))
    process = ShardedServer.from_points(
        points, grid=3, universe=UNIT,
        execution=ExecutionConfig(backend="process", kernel="auto"))
    yield points, thread, process
    thread.close()
    process.close()


class TestBackendEquivalence:
    @given(qx=coords, qy=coords, k=ks)
    @settings(deadline=None, max_examples=15)
    def test_knn_identical(self, backend_servers, qx, qy, k):
        _, thread, process = backend_servers
        a = thread.answer(KNNRequest((qx, qy), k=k))
        b = process.answer(KNNRequest((qx, qy), k=k))
        assert [e.oid for e in a.neighbors] == [e.oid for e in b.neighbors]
        assert a.detail.degraded == b.detail.degraded
        assert (a.detail.safety_radius or 0.0) == pytest.approx(
            b.detail.safety_radius or 0.0)
        assert a.transfer_bytes() == b.transfer_bytes()

    @given(qx=coords, qy=coords)
    @settings(deadline=None, max_examples=10)
    def test_window_and_range_identical(self, backend_servers, qx, qy):
        _, thread, process = backend_servers
        wa = thread.answer(WindowRequest((qx, qy), 0.2, 0.12))
        wb = process.answer(WindowRequest((qx, qy), 0.2, 0.12))
        assert [e.oid for e in wa.result] == [e.oid for e in wb.result]
        assert wa.detail.conservative_region == wb.detail.conservative_region
        ra = thread.answer(RangeRequest((qx, qy), 0.08))
        rb = process.answer(RangeRequest((qx, qy), 0.08))
        assert [e.oid for e in ra.result] == [e.oid for e in rb.result]
        assert ra.detail.validity_radius == pytest.approx(
            rb.detail.validity_radius)

    def test_process_backend_merges_io_deltas(self, backend_servers):
        _, _, process = backend_servers
        before = process.io_stats.total_node_accesses
        process.answer(WindowRequest((0.5, 0.5), 0.3, 0.3))
        # Worker-side accesses must land in the parent-side counters.
        assert process.io_stats.total_node_accesses > before

    def test_window_region_soundness_process(self, backend_servers):
        points, _, process = backend_servers
        rnd = random.Random(7)
        response = process.answer(WindowRequest((0.5, 0.5), 0.25, 0.2))
        rect = response.detail.conservative_region
        cached = sorted(e.oid for e in response.result)
        for _ in range(15):
            probe = (rnd.uniform(rect.xmin, rect.xmax),
                     rnd.uniform(rect.ymin, rect.ymax))
            if (min(probe[0] - rect.xmin, rect.xmax - probe[0]) < 1e-9
                    or min(probe[1] - rect.ymin, rect.ymax - probe[1])
                    < 1e-9):
                continue
            from repro.geometry import Rect
            moved = Rect(probe[0] - 0.125, probe[1] - 0.1,
                         probe[0] + 0.125, probe[1] + 0.1)
            assert brute_window(points, moved) == cached


# ----------------------------------------------------------------------
# auto-kernel resolution and the numpy kill switch
# ----------------------------------------------------------------------
class TestKernelResolution:
    def test_auto_resolves_by_availability(self):
        expected = "numpy" if numpy_enabled() else "soa"
        assert resolve_kernel_name("auto") == expected
        assert ExecutionConfig(kernel="auto").resolved_kernel() == expected

    def test_disable_env_forces_stdlib_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_DISABLE_NUMPY", "1")
        assert not numpy_enabled()
        assert resolve_kernel_name("auto") == "soa"
        with pytest.raises(RuntimeError):
            resolve_kernel_name("numpy")
        # The stdlib columnar path still answers correctly.
        points = _points(42, n=120)
        soa = LocationServer.from_points(points, universe=UNIT,
                                         kernel="auto")
        scalar = LocationServer.from_points(points, universe=UNIT)
        a = soa.answer(KNNRequest((0.4, 0.6), k=4))
        b = scalar.answer(KNNRequest((0.4, 0.6), k=4))
        assert [e.oid for e in a.neighbors] == [e.oid for e in b.neighbors]

    def test_get_kernel_passthrough_and_default(self):
        scalar = get_kernel(None)
        assert scalar.name == "scalar"
        assert get_kernel(scalar) is scalar


# ----------------------------------------------------------------------
# chaos: process workers are isolated from parent-side disk faults
# ----------------------------------------------------------------------
@pytest.mark.chaos
def test_process_pool_survives_parent_disk_faults():
    from repro.storage import FaultPlan, PageReadError, inject_faults

    points = _points(303, n=400)
    # Scalar kernel on purpose: columnar kernels answer from in-memory
    # column snapshots and never touch the simulated disk, so parent-side
    # faults would be invisible and the isolation property untestable.
    process = ShardedServer.from_points(
        points, grid=3, universe=UNIT,
        execution=ExecutionConfig(backend="process", kernel="scalar"))
    thread = ShardedServer.from_points(
        points, grid=3, universe=UNIT,
        execution=ExecutionConfig(backend="thread"))
    try:
        # Warm the pool first: workers snapshot the healthy trees.
        baseline = process.answer(WindowRequest((0.5, 0.5), 0.3, 0.3))
        for server in (process, thread):
            for shard in server.shards:
                inject_faults(shard.server.tree,
                              FaultPlan(read_failure_rate=1.0))
        # Every window job runs in a pool worker against its private
        # rebuilt tree — the poisoned parent disks are never touched.
        healthy = process.answer(WindowRequest((0.5, 0.5), 0.3, 0.3))
        assert ([e.oid for e in healthy.result]
                == [e.oid for e in baseline.result])
        # The thread backend probes the parent disks and dies.
        with pytest.raises(PageReadError):
            thread.answer(WindowRequest((0.5, 0.5), 0.3, 0.3))
        # kNN runs its nearest shard inline, parent-side: the fault
        # surfaces even under the process backend — by design, so
        # fault-injection tests keep exercising the resilience layer.
        with pytest.raises(PageReadError):
            process.answer(KNNRequest((0.5, 0.5), k=3))
    finally:
        process.close()
        thread.close()
