"""Observability integration: the telemetry pipeline under a real service.

End-to-end assertions that the trace context propagates client →
service → shard workers → disk, that the event log captures the
service's life (including injected faults), and that a concurrent
Prometheus scraper only ever sees mutually consistent counters.

Marked ``obs`` so the CI chaos job (``-m "chaos or obs"``) runs them
alongside the fault-injection battery; they also run in the default
suite.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import CacheConfig, KNNRequest, build_service
from repro.core import LocationServer, MobileClient
from repro.geometry import Rect
from repro.obs import EventLog, current_trace, prometheus_text
from repro.service import (
    BreakerConfig,
    MetricsRegistry,
    QueryService,
    ResilienceConfig,
    RetryPolicy,
    TraceBuffer,
)
from repro.storage import FaultPlan, inject_faults

pytestmark = pytest.mark.obs


def _points(n=600, seed=42):
    rnd = random.Random(seed)
    return [(rnd.random(), rnd.random()) for _ in range(n)]


# ----------------------------------------------------------------------
# the end-to-end span tree
# ----------------------------------------------------------------------
def test_sharded_query_builds_one_tree_client_to_disk():
    service = build_service(_points(), shards=2, cache=CacheConfig(capacity=8))
    service.answer(KNNRequest((0.5, 0.5), k=4, trace_id="t-e2e"))

    trace = service.traces.find("t-e2e")
    assert trace is not None
    root_names = [s.name for s in trace.children(None)]
    assert "cache_probe" in root_names
    assert "shard_fanout" in root_names
    assert "serialization" in root_names

    fanout = trace.span("shard_fanout")
    shard_spans = trace.children(fanout)
    assert shard_spans and all(s.name.startswith("shard_")
                               for s in shard_spans)
    assert fanout.meta["shards_queried"] == len(shard_spans)
    # Disk-phase spans hang under the shard that caused them — the
    # pool-worker handoff preserved the parent chain across threads.
    disk_spans = [d for s in shard_spans for d in trace.children(s)]
    assert {d.name for d in disk_spans} >= {"index_descent"}
    # Span accounting agrees with the disk counters.
    assert sum(s.meta.get("node_accesses", 0) for s in shard_spans) == \
        trace.total_node_accesses > 0


def test_query_events_are_correlated_and_ordered():
    service = build_service(_points(), shards=2, cache=CacheConfig(capacity=8))
    service.answer(KNNRequest((0.5, 0.5), k=4, trace_id="t-ev"))
    service.answer(KNNRequest((0.5, 0.5), k=4, trace_id="t-ev2"))  # hit

    events = service.events.tail(trace_id="t-ev")
    assert [e["event"] for e in events] == [
        "query.start", "cache.miss", "shard.scatter", "query.finish"]
    finish = events[-1]
    assert finish["node_accesses"] > 0
    assert finish["result_size"] == 4
    # The second, cache-served query never reached the shards.
    hit_events = [e["event"] for e in service.events.tail(trace_id="t-ev2")]
    assert hit_events == ["query.start", "cache.hit", "query.finish"]


def test_client_mints_trace_ids_and_logs_cache_answers():
    service = build_service(_points(), shards=1)
    client = MobileClient(service)
    client.knn((0.5, 0.5), k=3)
    first = service.traces.recent()[-1]
    assert len(first.trace_id) == 16  # client-minted, not service q-N
    int(first.trace_id, 16)
    # A second ask inside the validity region is answered locally; the
    # client logs it against the originating trace.
    client.knn((0.5 + 1e-9, 0.5), k=3)
    cache_events = service.events.tail(category="client")
    assert [e["event"] for e in cache_events] == ["client.cache_answer"]
    assert cache_events[0]["trace_id"] == first.trace_id


def test_no_trace_context_leaks_out_of_answer():
    service = build_service(_points(), shards=2, cache=CacheConfig(capacity=8))
    service.answer(KNNRequest((0.5, 0.5), k=3))
    assert current_trace() is None


# ----------------------------------------------------------------------
# the trace store
# ----------------------------------------------------------------------
def test_trace_buffer_find_newest_wins():
    buffer = TraceBuffer(capacity=8)
    from repro.service import QueryTrace
    buffer.append(QueryTrace("dup", "knn", 1.0, duration_ms=1.0))
    buffer.append(QueryTrace("dup", "knn", 2.0, duration_ms=2.0))
    assert buffer.find("dup").duration_ms == 2.0
    assert buffer.find("absent") is None


def test_trace_capacity_zero_disables_retention():
    service = QueryService(
        LocationServer.from_points(_points(), universe=Rect(0, 0, 1, 1)),
        trace_capacity=0)
    response = service.answer(KNNRequest((0.5, 0.5), k=3, trace_id="t-off"))
    assert len(response.result) == 3  # answering is unaffected
    assert len(service.traces) == 0
    assert service.traces.find("t-off") is None


# ----------------------------------------------------------------------
# scrape consistency
# ----------------------------------------------------------------------
def test_scraper_never_sees_hits_ahead_of_probes():
    """Writers bump probes *then* hits; because the registry snapshots
    all metrics in one critical section, no exposition can show more
    hits than probes."""
    metrics = MetricsRegistry()
    probes = metrics.counter("service.cache.probes")
    hits = metrics.counter("service.cache.hits")
    stop = threading.Event()
    failures = []

    def writer():
        while not stop.is_set():
            probes.inc()
            hits.inc()

    def scraper():
        import re
        pattern = re.compile(
            r"repro_service_cache_(probes|hits)_total (\d+)")
        for _ in range(200):
            found = dict(pattern.findall(prometheus_text(metrics)))
            seen_hits = int(found.get("hits", 0))
            seen_probes = int(found.get("probes", 0))
            if seen_hits > seen_probes:
                failures.append((seen_probes, seen_hits))
                return

    writers = [threading.Thread(target=writer) for _ in range(4)]
    readers = [threading.Thread(target=scraper) for _ in range(2)]
    for t in writers + readers:
        t.start()
    for t in readers:
        t.join()
    stop.set()
    for t in writers:
        t.join()
    assert not failures, f"scrape saw hits ahead of probes: {failures[:3]}"


# ----------------------------------------------------------------------
# fault events under injection (the chaos-job assertion)
# ----------------------------------------------------------------------
def test_injected_disk_faults_land_in_the_event_log():
    server = LocationServer.from_points(_points(), universe=Rect(0, 0, 1, 1))
    inject_faults(server.tree, FaultPlan(seed=13, read_failure_rate=0.2))
    service = QueryService(server, resilience=ResilienceConfig(
        retry=RetryPolicy(max_attempts=4, base_delay_s=1e-5,
                          max_delay_s=1e-4),
        breaker=BreakerConfig(failure_threshold=50, reset_timeout_s=1e-3),
        seed=5,
    ))
    rnd = random.Random(99)
    for _ in range(40):
        try:
            service.answer(KNNRequest((rnd.random(), rnd.random()), k=3))
        except Exception:
            pass  # persistent failures are fine; we assert the log

    faults = service.events.tail(category="fault")
    assert faults, "no disk fault events despite 20% read-failure rate"
    for event in faults:
        assert event["event"] in ("disk.read_failure", "disk.stuck_read")
        assert "page_id" in event and "phase" in event
        assert "trace_id" in event  # correlated to the failing query
    # Retries driven by those faults were logged too, on the same traces.
    retry_traces = {e["trace_id"]
                    for e in service.events.tail(category="retry")}
    assert retry_traces & {e["trace_id"] for e in faults}
