"""Oracle-backed mutation battery for incremental validity maintenance.

The continuous-query tier answers from cached per-subscription state —
a re-ranked influence set, a locally rebuilt order-k cell — instead of
re-querying.  These properties are the proof obligation: after *every*
mutation of a random stream, the subscription's authoritative state
(drain, honouring invalidate pushes exactly like a real client) must

* equal a fresh brute-force recompute at the subscription point, and
* stay constant across its shipped validity region: at every sampled
  probe the region claims, the brute-force answer equals the served
  result (region containment in the fresh recompute).

The deterministic tail runs the same battery across the thread and
process fan-out backends over a sharded server, where patches must
agree with scatter-gather answers.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ContinuousConfig,
    ExecutionConfig,
    KNNRequest,
    RangeRequest,
    WindowRequest,
    build_service,
)
from repro.geometry import Rect

from tests.conftest import brute_window

EPS = 1e-9
seeds = st.integers(min_value=0, max_value=2**31 - 1)
ks = st.integers(min_value=1, max_value=4)


def _instance(seed: int, n: int = 150):
    rnd = random.Random(seed)
    points = [(rnd.random(), rnd.random()) for _ in range(n)]
    query = (0.25 + 0.5 * rnd.random(), 0.25 + 0.5 * rnd.random())
    return points, query, rnd


def _mutate(service, live, rnd, next_oid, center, spread=0.08):
    """One random mutation, biased to overlap the subscription."""
    if live and rnd.random() < 0.45:
        oid = rnd.choice(sorted(live))
        x, y = live.pop(oid)
        assert service.delete_object(oid, x, y)
        return next_oid
    x = min(1.0, max(0.0, center[0] + rnd.gauss(0.0, spread)))
    y = min(1.0, max(0.0, center[1] + rnd.gauss(0.0, spread)))
    service.insert_object(next_oid, x, y)
    live[next_oid] = (x, y)
    return next_oid + 1


def _sync(sub, pos):
    """What a well-behaved client holds after draining: the last queued
    update wins; an invalidate — or a patched region that no longer
    covers the client's position — forces a move (escape hatch)."""
    updates = sub.drain()
    if updates and updates[-1].kind == "invalidate":
        sub.move(pos)
    elif (sub.response is not None
          and not sub.response.region.contains(pos)):
        sub.move(pos)
    return sub.response


def _probes(region, around, rnd, num=8, sigma=0.03):
    for _ in range(num):
        p = (min(1.0, max(0.0, around[0] + rnd.gauss(0.0, sigma))),
             min(1.0, max(0.0, around[1] + rnd.gauss(0.0, sigma))))
        if region.contains(p):
            yield p


def _knn_ok(live, q, served, k):
    if len(served) != min(k, len(live)):
        return False
    if not served:
        return True
    farthest = max(math.dist(live[i], q) for i in served)
    nearest_out = min((math.dist(p, q) for i, p in live.items()
                       if i not in served), default=math.inf)
    return farthest <= nearest_out + EPS


def _window_ids(live, focus, w, h):
    rect = Rect(focus[0] - w / 2, focus[1] - h / 2,
                focus[0] + w / 2, focus[1] + h / 2)
    return sorted(i for i, p in live.items() if rect.contains_point(p))


def _range_ids(live, center, radius):
    return sorted(i for i, p in live.items()
                  if math.dist(p, center) <= radius)


class TestIncrementalOracle:
    @given(seeds, ks)
    @settings(deadline=None, max_examples=15)
    def test_patched_knn_equals_fresh_recompute(self, seed, k):
        points, query, rnd = _instance(seed)
        live = dict(enumerate(points))
        service = build_service(points, continuous=ContinuousConfig(margin=6))
        try:
            sub = service.subscribe(KNNRequest(query, k=k))
            pos, next_oid = query, len(points)
            for step in range(30):
                next_oid = _mutate(service, live, rnd, next_oid, pos)
                if step % 7 == 6:  # the client wanders, too
                    pos = (min(1.0, max(0.0, pos[0] + rnd.gauss(0, 0.02))),
                           min(1.0, max(0.0, pos[1] + rnd.gauss(0, 0.02))))
                    sub.move(pos)
                current = _sync(sub, pos)
                served = {e.oid for e in current.result}
                assert _knn_ok(live, pos, served, k), (
                    f"seed={seed} k={k} step={step}: patched result "
                    f"diverged from brute force at {pos}")
                for probe in _probes(current.region, pos, rnd):
                    assert _knn_ok(live, probe, served, k), (
                        f"seed={seed} k={k} step={step}: region claims "
                        f"{probe} but the kNN set changed there")
        finally:
            service.close()

    @given(seeds, st.floats(min_value=0.08, max_value=0.25))
    @settings(deadline=None, max_examples=15)
    def test_patched_window_equals_fresh_recompute(self, seed, w):
        points, query, rnd = _instance(seed)
        live = dict(enumerate(points))
        service = build_service(points)
        try:
            sub = service.subscribe(WindowRequest(query, w, w))
            pos, next_oid = query, len(points)
            for step in range(30):
                next_oid = _mutate(service, live, rnd, next_oid, pos)
                if step % 9 == 8:
                    pos = (min(1.0, max(0.0, pos[0] + rnd.gauss(0, 0.02))),
                           min(1.0, max(0.0, pos[1] + rnd.gauss(0, 0.02))))
                    sub.move(pos)
                current = _sync(sub, pos)
                served = sorted(e.oid for e in current.result)
                assert served == _window_ids(live, pos, w, w), (
                    f"seed={seed} w={w} step={step}: patched window "
                    f"diverged from brute force at {pos}")
                for probe in _probes(current.region, pos, rnd):
                    assert served == _window_ids(live, probe, w, w), (
                        f"seed={seed} w={w} step={step}: region claims "
                        f"{probe} but the window result changed there")
        finally:
            service.close()

    @given(seeds, st.floats(min_value=0.05, max_value=0.2))
    @settings(deadline=None, max_examples=15)
    def test_patched_range_equals_fresh_recompute(self, seed, radius):
        points, query, rnd = _instance(seed)
        live = dict(enumerate(points))
        service = build_service(points)
        try:
            sub = service.subscribe(RangeRequest(query, radius))
            pos, next_oid = query, len(points)
            for step in range(30):
                next_oid = _mutate(service, live, rnd, next_oid, pos)
                if step % 9 == 8:
                    pos = (min(1.0, max(0.0, pos[0] + rnd.gauss(0, 0.02))),
                           min(1.0, max(0.0, pos[1] + rnd.gauss(0, 0.02))))
                    sub.move(pos)
                current = _sync(sub, pos)
                served = sorted(e.oid for e in current.result)
                assert served == _range_ids(live, pos, radius), (
                    f"seed={seed} r={radius} step={step}: patched range "
                    f"diverged from brute force at {pos}")
                for probe in _probes(current.region, pos, rnd):
                    assert served == _range_ids(live, probe, radius), (
                        f"seed={seed} r={radius} step={step}: region "
                        f"claims {probe} but the result changed there")
        finally:
            service.close()

    @given(seeds)
    @settings(deadline=None, max_examples=10)
    def test_subscribed_client_tracks_brute_force(self, seed):
        """End to end: a subscribed MobileClient's every answer — pushed,
        cached or re-queried — equals the brute-force kNN."""
        from repro import MobileClient

        points, query, rnd = _instance(seed, n=120)
        live = dict(enumerate(points))
        service = build_service(points, continuous=ContinuousConfig(margin=6))
        try:
            client = MobileClient(service, subscribe=True)
            pos, next_oid, k = query, len(points), 3
            for _ in range(25):
                if rnd.random() < 0.4:
                    next_oid = _mutate(service, live, rnd, next_oid, pos)
                pos = (min(1.0, max(0.0, pos[0] + rnd.gauss(0, 0.015))),
                       min(1.0, max(0.0, pos[1] + rnd.gauss(0, 0.015))))
                answer = client.knn(pos, k=k)
                assert _knn_ok(live, pos, {e.oid for e in answer}, k), (
                    f"seed={seed}: subscribed client served a wrong kNN "
                    f"set at {pos}")
            client.close()
        finally:
            service.close()


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_oracle_holds_across_sharded_backends(backend):
    """The same battery over a 2x2 sharded server on both fan-out
    backends: subscription patches must agree with scatter-gather."""
    rnd = random.Random(4242)
    points = [(rnd.random(), rnd.random()) for _ in range(200)]
    live = dict(enumerate(points))
    service = build_service(
        points, shards=2, continuous=ContinuousConfig(margin=6),
        execution=ExecutionConfig(backend=backend))
    try:
        knn = service.subscribe(KNNRequest((0.5, 0.5), k=3))
        win = service.subscribe(WindowRequest((0.45, 0.55), 0.2, 0.2))
        rng_ = service.subscribe(RangeRequest((0.55, 0.45), 0.12))
        next_oid = len(points)
        for step in range(8):  # few steps: each epoch re-arms the pool
            next_oid = _mutate(service, live, rnd, next_oid, (0.5, 0.5),
                               spread=0.12)
            assert _knn_ok(live, (0.5, 0.5),
                           {e.oid for e in _sync(knn, (0.5, 0.5)).result},
                           3), f"{backend} step {step}: knn diverged"
            assert (sorted(e.oid for e in
                           _sync(win, (0.45, 0.55)).result)
                    == _window_ids(live, (0.45, 0.55), 0.2, 0.2)), (
                f"{backend} step {step}: window diverged")
            assert (sorted(e.oid for e in
                           _sync(rng_, (0.55, 0.45)).result)
                    == _range_ids(live, (0.55, 0.45), 0.12)), (
                f"{backend} step {step}: range diverged")
    finally:
        service.close()
