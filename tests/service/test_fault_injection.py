"""Chaos suite: a client fleet over a failing disk must never be wrong.

The invariant under test is the resilience layer's whole point: with
seeded page-read faults, injected latency and a stuck buffer pool, a
fleet of concurrent clients may see *degraded* responses (shrunk
validity regions) and *stale* fallback answers (flagged, bounded), and
individual updates may error out — but an answer presented as current
is never incorrect.  Every non-stale answer is checked against a
brute-force oracle at the exact query position.

Run explicitly with ``pytest -m chaos`` (the CI chaos job); the tests
also run in the default suite.
"""

from __future__ import annotations

import math
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import LocationServer, MobileClient
from repro.service import (
    BreakerConfig,
    ClientFleet,
    FleetConfig,
    QueryService,
    ResilienceConfig,
    RetryPolicy,
)
from repro.storage import FaultPlan, inject_faults

from tests.conftest import brute_window
from repro.geometry import Rect

pytestmark = pytest.mark.chaos

NUM_THREADS = 8
TICKS = 40
FAULT_RATE = 0.05
EPS = 1e-9


def _dataset(seed: int = 77, n: int = 800):
    rnd = random.Random(seed)
    return [(rnd.random(), rnd.random()) for _ in range(n)]


def _make_service(points, seed: int = 5):
    server = LocationServer.from_points(points, universe=Rect(0, 0, 1, 1))
    service = QueryService(server, resilience=ResilienceConfig(
        retry=RetryPolicy(max_attempts=3, base_delay_s=1e-4,
                          max_delay_s=2e-3),
        breaker=BreakerConfig(failure_threshold=3, reset_timeout_s=0.005),
        seed=seed,
    ))
    return server, service


def _heal_disk(server) -> None:
    """Restore the original clean disk (unwinding nested injections)."""
    disk = server.tree.disk
    while hasattr(disk, "replaced"):
        disk = disk.replaced
    server.tree.disk = disk


def _knn_correct(points, q, answer_ids, k) -> bool:
    dist = sorted((math.dist(p, q), i) for i, p in enumerate(points))
    if len(answer_ids) != k:
        return False
    farthest = max(math.dist(points[i], q) for i in answer_ids)
    nearest_excluded = min(
        (d for d, i in dist if i not in answer_ids), default=math.inf)
    return farthest <= nearest_excluded + EPS


class _Tally:
    """Thread-safe outcome accounting for one chaos run."""

    def __init__(self):
        self.lock = threading.Lock()
        self.checked = 0
        self.stale = 0
        self.errors = 0
        self.incorrect = []

    def record(self, outcome, detail=None):
        with self.lock:
            if outcome == "checked":
                self.checked += 1
            elif outcome == "stale":
                self.stale += 1
            elif outcome == "error":
                self.errors += 1
            else:
                self.incorrect.append(detail)


def _drive_client(points, service, thread_id: int, tally: _Tally,
                  max_stale=10):
    rnd = random.Random(1000 + thread_id)
    client = MobileClient(service, max_stale=max_stale,
                          metrics=service.metrics)
    kind = "knn" if thread_id % 2 == 0 else "window"
    k = 2 + thread_id % 3
    w = h = 0.12
    pos = (rnd.random(), rnd.random())
    for _ in range(TICKS):
        pos = (min(1.0, max(0.0, pos[0] + rnd.uniform(-0.02, 0.02))),
               min(1.0, max(0.0, pos[1] + rnd.uniform(-0.02, 0.02))))
        try:
            if kind == "knn":
                answer = client.knn(pos, k=k)
            else:
                answer = client.window(pos, w, h)
        except Exception as exc:
            if getattr(exc, "transient", False):
                tally.record("error")
                continue
            raise  # a bug, not chaos: fail the test loudly
        if client.last_served == "stale":
            tally.record("stale")
            continue
        ids = {e.oid for e in answer}
        if kind == "knn":
            ok = _knn_correct(points, pos, ids, k)
        else:
            expected = brute_window(
                points, Rect(pos[0] - w / 2, pos[1] - h / 2,
                             pos[0] + w / 2, pos[1] + h / 2))
            ok = sorted(ids) == expected
        if ok:
            tally.record("checked")
        else:
            tally.record("incorrect",
                         (kind, thread_id, pos, sorted(ids)))


def test_no_incorrect_answers_under_page_faults():
    """5% seeded read failures, 8 concurrent clients: zero wrong answers,
    and the breaker both trips and recovers."""
    points = _dataset()
    server, service = _make_service(points)
    inject_faults(server.tree, FaultPlan(seed=13,
                                         read_failure_rate=FAULT_RATE))
    tally = _Tally()
    with ThreadPoolExecutor(max_workers=NUM_THREADS) as pool:
        futures = [pool.submit(_drive_client, points, service, t, tally)
                   for t in range(NUM_THREADS)]
        for f in futures:
            f.result()

    assert tally.incorrect == [], (
        f"{len(tally.incorrect)} incorrect answers: {tally.incorrect[:5]}")
    total = tally.checked + tally.stale + tally.errors
    assert total == NUM_THREADS * TICKS
    # The run actually exercised the failure paths...
    assert tally.checked > 0
    snap = service.stats_snapshot()
    assert snap["faults_injected"]["read_failures"] > 0
    # Fallbacks were flagged, never silent: every stale answer the
    # clients served is visible in the shared metrics registry.
    assert (snap["metrics"]["counters"].get("client.stale_answers", 0)
            == tally.stale)
    # ...and the breaker both trips and recovers.  The storm usually
    # trips it on its own; the epilogue makes the cycle deterministic:
    # a total outage forces the trip, healing the disk forces recovery.
    breaker = service.breaker
    if breaker.trips == 0:
        inject_faults(server.tree, FaultPlan(read_failure_rate=1.0))
        probe = MobileClient(service)
        for _ in range(20):
            if breaker.trips:
                break
            with pytest.raises(Exception):
                probe.knn((0.5, 0.5), k=2)
    assert breaker.trips >= 1
    _heal_disk(server)
    probe = MobileClient(service)
    deadline = time.monotonic() + 5.0
    while breaker.recoveries == 0 and time.monotonic() < deadline:
        time.sleep(0.006)  # > reset_timeout_s: a half-open probe is due
        try:
            probe.knn((0.5, 0.5), k=2)
        except Exception:
            pass  # a rejected or failed probe; keep waiting
    assert breaker.recoveries >= 1


def test_latency_and_stuck_buffer_do_not_corrupt_answers():
    """Heavy-tailed latency plus a stuck buffer window: answers stay
    correct (latency only slows queries; stuck reads only cost faults)."""
    points = _dataset(seed=99, n=500)
    server, service = _make_service(points, seed=6)
    faulty = inject_faults(server.tree, FaultPlan(
        seed=21,
        latency_mean_s=2e-5, latency_rate=0.3,
        stuck_buffer_at=50, stuck_buffer_reads=200,
    ), sleep=lambda _: None)  # account latency without really sleeping
    tally = _Tally()
    with ThreadPoolExecutor(max_workers=4) as pool:
        futures = [pool.submit(_drive_client, points, service, t, tally)
                   for t in range(4)]
        for f in futures:
            f.result()
    assert tally.incorrect == []
    assert tally.errors == 0  # no read failures were configured
    assert faulty.injected["latency_events"] > 0
    assert faulty.injected["stuck_reads"] == 200


def test_scripted_failures_are_retried_transparently():
    """Pinned read failures (deterministic): the retry layer absorbs a
    scripted failure and the caller sees a correct answer."""
    points = _dataset(seed=3, n=300)
    server, service = _make_service(points, seed=1)
    inject_faults(server.tree, FaultPlan(seed=0, fail_reads=(2,)))
    client = MobileClient(service, max_stale=5)
    answer = client.knn((0.5, 0.5), k=3)
    assert client.last_served == "server"
    assert _knn_correct(points, (0.5, 0.5), {e.oid for e in answer}, 3)
    assert service.stats_snapshot()["resilience"]["retries"] >= 1


def test_fleet_run_under_faults_reports_errors_not_crashes():
    """The stock ClientFleet with ``continue_on_error`` completes a run
    over a faulty disk and accounts for every update."""
    points = _dataset(seed=42, n=400)
    server, service = _make_service(points, seed=9)
    inject_faults(server.tree, FaultPlan(seed=7, read_failure_rate=0.08))
    fleet = ClientFleet(service, FleetConfig(
        num_clients=8, seed=4, max_stale=8, continue_on_error=True))
    report = fleet.run(20, max_workers=NUM_THREADS)
    stats = report.stats
    assert stats.position_updates == 8 * 20
    # Every update is accounted for: served (cache/server/stale) or errored.
    served = stats.cache_answers + stats.server_queries + stats.stale_answers
    assert served + report.errors == stats.position_updates
    assert report.snapshot["resilience"]["retries"] >= 0


def test_mutating_workload_with_faults_and_replica_kill():
    """Continuous queries under chaos: a phased mutating workload over a
    replicated tier with 5% read faults on the followers and a mid-run
    replica kill.  The contract: zero incorrect answers — every served
    (non-stale) response matches the brute-force oracle — and every
    subscription either tracks the pushed patches/invalidations to a
    state equal to a fresh recompute, or is loudly marked broken."""
    from repro import (
        ContinuousConfig,
        KNNRequest,
        RangeRequest,
        WindowRequest,
        build_service,
    )

    points = _dataset(seed=17, n=600)
    service = build_service(
        points, replicas=3,
        continuous=ContinuousConfig(margin=6),
        resilience=ResilienceConfig(
            retry=RetryPolicy(max_attempts=3, base_delay_s=1e-4,
                              max_delay_s=2e-3),
            breaker=BreakerConfig(failure_threshold=3,
                                  reset_timeout_s=0.005),
            seed=8))
    replica_set = service.server
    # Faults on the read followers only: the primary is the write path,
    # so the oracle's view of the live data stays exact.
    faulty_disks = [
        inject_faults(replica.server.tree,
                      FaultPlan(seed=23, read_failure_rate=FAULT_RATE))
        for replica in replica_set.replicas[1:]]
    live = {i: p for i, p in enumerate(points)}
    anchors = {"knn": (0.5, 0.5), "window": (0.45, 0.55),
               "range": (0.55, 0.45)}
    subs = {
        "knn": service.subscribe(KNNRequest(anchors["knn"], k=3)),
        "window": service.subscribe(
            WindowRequest(anchors["window"], 0.15, 0.15)),
        "range": service.subscribe(RangeRequest(anchors["range"], 0.1)),
    }

    def sync(sub, pos, attempts=5):
        updates = sub.drain()
        needs_move = ((updates and updates[-1].kind == "invalidate")
                      or sub.response is None
                      or not sub.response.region.contains(pos))
        if needs_move:
            for attempt in range(attempts):
                try:
                    sub.move(pos)
                    break
                except Exception as exc:
                    if sub.broken or not getattr(exc, "transient", False):
                        raise
            else:
                raise AssertionError("move never recovered from chaos")
        return sub.response

    def check_sub(kind):
        sub = subs[kind]
        if sub.broken:
            return
        pos = anchors[kind]
        current = sync(sub, pos)
        served = {e.oid for e in current.result}
        if kind == "knn":
            farthest = max((math.dist(live[i], pos) for i in served),
                           default=0.0)
            outside = min((math.dist(p, pos) for i, p in live.items()
                           if i not in served), default=math.inf)
            assert len(served) == min(3, len(live))
            assert farthest <= outside + EPS, (
                f"subscription served a wrong kNN set: {sorted(served)}")
        elif kind == "window":
            rect = Rect(pos[0] - 0.075, pos[1] - 0.075,
                        pos[0] + 0.075, pos[1] + 0.075)
            assert sorted(served) == sorted(
                i for i, p in live.items() if rect.contains_point(p))
        else:
            assert sorted(served) == sorted(
                i for i, p in live.items()
                if math.dist(p, pos) <= 0.1 + EPS)

    rnd = random.Random(31)
    tally = _Tally()
    clients = [MobileClient(service, max_stale=10,
                            metrics=service.metrics) for _ in range(6)]

    def drive(idx, pos):
        client = clients[idx]
        k = 2 + idx % 3
        try:
            answer = client.knn(pos, k=k)
        except Exception as exc:
            if getattr(exc, "transient", False):
                tally.record("error")
                return
            raise
        if client.last_served == "stale":
            tally.record("stale")
            return
        snapshot_pts = dict(live)
        ids = {e.oid for e in answer}
        farthest = max((math.dist(snapshot_pts[i], pos) for i in ids),
                       default=0.0)
        outside = min((math.dist(p, pos) for i, p in snapshot_pts.items()
                       if i not in ids), default=math.inf)
        if len(ids) == k and farthest <= outside + EPS:
            tally.record("checked")
        else:
            tally.record("incorrect", (idx, pos, sorted(ids)))

    next_oid = len(points)
    rounds = 20
    for rnd_no in range(rounds):
        if rnd_no == rounds // 2:
            replica_set.kill(2)  # one follower crashes mid-run
        # Mutation phase (single-writer, like a real primary).
        for _ in range(6):
            if live and rnd.random() < 0.4:
                oid = rnd.choice(sorted(live))
                x, y = live.pop(oid)
                assert service.delete_object(oid, x, y)
            else:
                anchor = anchors[rnd.choice(("knn", "window", "range"))]
                x = min(1.0, max(0.0, anchor[0] + rnd.gauss(0.0, 0.1)))
                y = min(1.0, max(0.0, anchor[1] + rnd.gauss(0.0, 0.1)))
                service.insert_object(next_oid, x, y)
                live[next_oid] = (x, y)
                next_oid += 1
        # Query phase: concurrent clients against the frozen live set.
        positions = [(rnd.random(), rnd.random()) for _ in clients]
        with ThreadPoolExecutor(max_workers=len(clients)) as pool:
            futures = [pool.submit(drive, i, positions[i])
                       for i in range(len(clients))]
            for f in futures:
                f.result()
        for kind in subs:
            check_sub(kind)

    assert tally.incorrect == [], (
        f"{len(tally.incorrect)} incorrect answers: {tally.incorrect[:5]}")
    assert tally.checked > 0
    # The chaos actually happened: faults fired and the kill was felt.
    assert sum(d.injected["read_failures"] for d in faulty_disks) > 0
    snap = replica_set.snapshot()
    assert snap["replication_retries"] >= 0  # shielded write path
    rows = {r["rid"]: r for r in snap["replicas"]}
    assert rows[2]["alive"] is False
    # Every subscription is accounted for: live-and-correct (checked
    # above every round) or loudly broken with a final invalidate.
    for kind, sub in subs.items():
        if sub.broken:
            assert sub.invalidates >= 1, f"{kind} broke silently"
    service.close()
