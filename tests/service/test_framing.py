"""Roundtrip tests for the struct-packed shard wire frames.

The process-pool backend ships queries to workers as compact binary
request frames and gets typed responses back the same way; these tests
pin the codec: every field survives ``encode -> decode`` bit-exact,
optional budgets map through the NaN / -1 sentinels, and foreign bytes
are rejected instead of misparsed.
"""

from __future__ import annotations

import random

import pytest

from repro.core.api import KNNRequest, RangeRequest, WindowRequest
from repro.core.server import LocationServer
from repro.service.framing import (
    JobResult,
    RequestFrame,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)

from tests.conftest import UNIT


@pytest.fixture(scope="module")
def server():
    rnd = random.Random(21)
    points = [(rnd.random(), rnd.random()) for _ in range(250)]
    return LocationServer.from_points(points, universe=UNIT)


class TestRequestFrames:
    def test_knn_roundtrip_with_budget(self):
        frame = RequestFrame(
            kind="knn", params=(0.25, 0.75, "fifo"),
            jobs=[(0, 3), (4, 1)], deadline_ms=12.5,
            max_node_accesses=400, trace_id="abc123")
        decoded = decode_request(encode_request(frame))
        assert decoded == frame

    def test_none_budgets_survive(self):
        for kind, params, jobs in [
            ("knn", (0.1, 0.2, "lifo"), [(2, 5)]),
            ("window", (0.5, 0.5, 0.2, 0.1), [(0,), (1,)]),
            ("range", (0.3, 0.4, 0.05), [(7,)]),
        ]:
            frame = RequestFrame(kind=kind, params=params, jobs=jobs)
            decoded = decode_request(encode_request(frame))
            assert decoded.deadline_ms is None
            assert decoded.max_node_accesses is None
            assert decoded.trace_id is None
            assert decoded.params == pytest.approx(params) \
                if kind != "knn" else decoded.params == params
            assert decoded.jobs == jobs

    def test_rejects_foreign_bytes(self):
        frame = RequestFrame(kind="window", params=(0, 0, 1, 1),
                             jobs=[(0,)])
        good = encode_request(frame)
        with pytest.raises(ValueError):
            decode_request(b"XXXX" + good[4:])
        with pytest.raises(ValueError):
            decode_response(good, UNIT)  # request magic != response magic


class TestResponseFrames:
    def _roundtrip(self, kind, response):
        na = {"result": 7, "influence": 3}
        pf = {"result": 2}
        spans = [("shard_0", 0.0, 1.5, -1, {"sid": 0, "process": True}),
                 ("index_descent", 0.1, 0.4, 0, {})]
        data = encode_response(kind, [(0, response, na, pf, spans)])
        (job,) = decode_response(data, UNIT)
        assert isinstance(job, JobResult)
        assert job.sid == 0
        assert job.node_accesses == na
        assert job.page_faults == pf
        assert job.spans == spans
        return job.response

    def test_knn_payload(self, server):
        response = server.answer(KNNRequest((0.4, 0.6), k=4))
        got = self._roundtrip("knn", response)
        assert [e.oid for e in got.neighbors] == \
            [e.oid for e in response.neighbors]
        assert got.detail.degraded == response.detail.degraded
        assert got.region.contains((0.4, 0.6))

    def test_window_payload(self, server):
        response = server.answer(WindowRequest((0.5, 0.5), 0.3, 0.2))
        got = self._roundtrip("window", response)
        assert [e.oid for e in got.result] == \
            [e.oid for e in response.result]
        assert (got.detail.conservative_region
                == response.detail.conservative_region)

    def test_range_payload(self, server):
        response = server.answer(RangeRequest((0.5, 0.5), 0.15))
        got = self._roundtrip("range", response)
        assert [e.oid for e in got.result] == \
            [e.oid for e in response.result]
        assert got.detail.validity_radius == pytest.approx(
            response.detail.validity_radius)

    def test_multiple_jobs_preserve_order(self, server):
        responses = [server.answer(KNNRequest((x, 0.5), k=2))
                     for x in (0.2, 0.5, 0.8)]
        data = encode_response(
            "knn", [(sid, r, {}, {}, [])
                    for sid, r in enumerate(responses)])
        jobs = decode_response(data, UNIT)
        assert [j.sid for j in jobs] == [0, 1, 2]
        for job, original in zip(jobs, responses):
            assert [e.oid for e in job.response.neighbors] == \
                [e.oid for e in original.neighbors]
