"""Unit tests for the retry policy and the circuit breaker (fake clocks)."""

from __future__ import annotations

import random

import pytest

from repro.service import (
    BreakerConfig,
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    call_with_retry,
    is_transient,
)
from repro.service.faults import CLOSED, HALF_OPEN, OPEN
from repro.storage import PageReadError


class _Transient(Exception):
    transient = True


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# ----------------------------------------------------------------------
# transient taxonomy
# ----------------------------------------------------------------------
def test_is_transient_duck_typing():
    assert is_transient(_Transient())
    assert is_transient(PageReadError(1, "nn", 1))
    assert is_transient(CircuitOpenError(0.5))
    assert not is_transient(ValueError("boom"))
    assert not is_transient(KeyboardInterrupt())


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_s=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter="bogus")


def test_backoff_caps_and_doubles_without_jitter():
    policy = RetryPolicy(base_delay_s=0.01, max_delay_s=0.05, jitter="none")
    assert [policy.backoff_s(i) for i in range(5)] == pytest.approx(
        [0.01, 0.02, 0.04, 0.05, 0.05])


def test_full_jitter_is_uniform_below_cap():
    policy = RetryPolicy(base_delay_s=0.01, max_delay_s=1.0, jitter="full")
    rng = random.Random(0)
    draws = [policy.backoff_s(3, rng) for _ in range(200)]
    cap = 0.08
    assert all(0.0 <= d <= cap for d in draws)
    assert len(set(draws)) > 100  # actually jittered, not constant


def test_call_with_retry_succeeds_after_transient_failures():
    calls = []
    sleeps = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise _Transient("not yet")
        return "ok"

    policy = RetryPolicy(max_attempts=3, base_delay_s=0.01, jitter="none")
    assert call_with_retry(flaky, policy, sleep=sleeps.append) == "ok"
    assert len(calls) == 3
    assert sleeps == pytest.approx([0.01, 0.02])


def test_call_with_retry_exhausts_attempts():
    def always_fails():
        raise _Transient("still down")

    policy = RetryPolicy(max_attempts=2, base_delay_s=0.0)
    with pytest.raises(_Transient):
        call_with_retry(always_fails, policy, sleep=lambda _: None)


def test_call_with_retry_propagates_non_transient_immediately():
    calls = []

    def fatal():
        calls.append(1)
        raise ValueError("bug, not weather")

    with pytest.raises(ValueError):
        call_with_retry(fatal, RetryPolicy(max_attempts=5, base_delay_s=0.0))
    assert len(calls) == 1


def test_on_retry_hook_sees_each_attempt():
    seen = []

    def flaky():
        if len(seen) < 2:
            raise _Transient()
        return 1

    call_with_retry(
        flaky, RetryPolicy(max_attempts=3, base_delay_s=0.0),
        sleep=lambda _: None,
        on_retry=lambda attempt, delay, exc: seen.append((attempt, delay)))
    assert [a for a, _ in seen] == [0, 1]


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
def test_breaker_config_validation():
    with pytest.raises(ValueError):
        BreakerConfig(failure_threshold=0)
    with pytest.raises(ValueError):
        BreakerConfig(reset_timeout_s=-1.0)


def test_breaker_trips_after_consecutive_failures():
    clock = FakeClock()
    breaker = CircuitBreaker(BreakerConfig(failure_threshold=3), clock=clock)
    assert breaker.state == CLOSED
    for _ in range(2):
        breaker.before_call()
        breaker.record_failure()
    assert breaker.state == CLOSED
    breaker.before_call()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.trips == 1
    with pytest.raises(CircuitOpenError) as exc_info:
        breaker.before_call()
    assert exc_info.value.retry_after_s == pytest.approx(1.0)
    assert breaker.rejections == 1


def test_success_resets_the_failure_streak():
    breaker = CircuitBreaker(BreakerConfig(failure_threshold=2),
                             clock=FakeClock())
    for _ in range(5):
        breaker.record_failure()
        breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.trips == 0


def test_half_open_probe_recovers():
    clock = FakeClock()
    breaker = CircuitBreaker(
        BreakerConfig(failure_threshold=1, reset_timeout_s=0.5), clock=clock)
    breaker.record_failure()
    assert breaker.state == OPEN
    clock.advance(0.6)
    assert breaker.state == HALF_OPEN
    breaker.before_call()  # the probe is admitted
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.recoveries == 1


def test_half_open_probe_failure_reopens():
    clock = FakeClock()
    breaker = CircuitBreaker(
        BreakerConfig(failure_threshold=1, reset_timeout_s=0.5), clock=clock)
    breaker.record_failure()
    clock.advance(0.6)
    breaker.before_call()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.trips == 2
    # The reopen restarts the timeout from the probe failure.
    clock.advance(0.4)
    with pytest.raises(CircuitOpenError):
        breaker.before_call()


def test_half_open_limits_concurrent_probes():
    clock = FakeClock()
    breaker = CircuitBreaker(
        BreakerConfig(failure_threshold=1, reset_timeout_s=0.1,
                      half_open_max_probes=1), clock=clock)
    breaker.record_failure()
    clock.advance(0.2)
    breaker.before_call()  # probe #1 admitted, still in flight
    with pytest.raises(CircuitOpenError):
        breaker.before_call()  # probe #2 rejected


def test_snapshot_is_json_shaped():
    breaker = CircuitBreaker(clock=FakeClock())
    breaker.record_failure()
    snap = breaker.snapshot()
    assert snap == {
        "state": CLOSED, "trips": 0, "recoveries": 0, "rejections": 0,
        "consecutive_failures": 1,
    }
