"""Resource lifecycle tests: close is idempotent at every layer and the
process-backend pool is reaped at interpreter exit even without close().

A leaked fork pool is the classic way a benchmark driver wedges CI —
the parent exits, the workers linger.  :class:`ShardedServer` registers
a weakly-bound ``atexit`` hook when the pool is first built; these
tests pin that hook (via a real subprocess that *forgets* to close),
the double-close no-op, and the context-manager form, then walk the
same guarantees up through :class:`ReplicaSet` and
:class:`QueryService`.
"""

from __future__ import annotations

import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.api import KNNRequest
from repro.geometry import Rect
from repro.kernel import ExecutionConfig
from repro.service import QueryService, ReplicaConfig, ReplicaSet
from repro.service.shard import ShardedServer

UNIT = Rect(0.0, 0.0, 1.0, 1.0)
SRC = str(Path(__file__).resolve().parents[2] / "src")


def _points(n=200, seed=3):
    rng = random.Random(seed)
    return [(rng.random(), rng.random()) for _ in range(n)]


# ----------------------------------------------------------------------
# ShardedServer
# ----------------------------------------------------------------------
def test_sharded_double_close_is_noop_thread_backend():
    server = ShardedServer.from_points(_points(), universe=UNIT)
    server.answer(KNNRequest((0.5, 0.5), k=2))
    server.close()
    server.close()


def test_sharded_double_close_is_noop_process_backend():
    execution = ExecutionConfig(backend="process")
    server = ShardedServer.from_points(_points(), universe=UNIT,
                                       execution=execution)
    resp = server.answer(KNNRequest((0.5, 0.5), k=2))
    assert len(resp.result) == 2
    assert server._atexit_cb is not None  # hook armed with the pool
    server.close()
    assert server._atexit_cb is None  # hook disarmed: server collectable
    server.close()
    # A closed server still answers: the pool is rebuilt on demand.
    resp = server.answer(KNNRequest((0.5, 0.5), k=2))
    assert len(resp.result) == 2
    server.close()


def test_sharded_context_manager_closes():
    with ShardedServer.from_points(
            _points(), universe=UNIT,
            execution=ExecutionConfig(backend="process")) as server:
        server.answer(KNNRequest((0.5, 0.5), k=2))
    assert server._proc_pool is None
    server.close()  # close after __exit__ is a no-op


def test_close_before_any_query_is_noop():
    server = ShardedServer.from_points(_points(), universe=UNIT)
    server.close()  # no pool was ever built


def test_interpreter_exit_reaps_leaked_process_pool():
    """A script that builds a process-backend server, queries it, and
    exits WITHOUT closing must still terminate cleanly (rc 0, no
    traceback): the atexit hook shuts the fork workers down."""
    script = """
import random
from repro.core.api import KNNRequest
from repro.geometry import Rect
from repro.kernel import ExecutionConfig
from repro.service.shard import ShardedServer

rng = random.Random(3)
points = [(rng.random(), rng.random()) for _ in range(200)]
server = ShardedServer.from_points(
    points, universe=Rect(0.0, 0.0, 1.0, 1.0),
    execution=ExecutionConfig(backend="process"))
resp = server.answer(KNNRequest((0.5, 0.5), k=2))
assert len(resp.result) == 2
assert server._atexit_cb is not None
print("QUERIED-OK")
# no close(): interpreter exit must reap the pool
"""
    proc = subprocess.run(
        [sys.executable, "-c", script],
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin:/usr/local/bin"},
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr
    assert "QUERIED-OK" in proc.stdout
    assert "Traceback" not in proc.stderr


# ----------------------------------------------------------------------
# ReplicaSet and QueryService
# ----------------------------------------------------------------------
def test_replica_set_close_cascades_and_is_idempotent():
    rs = ReplicaSet.from_points(_points(), replicas=2, shards=2,
                                universe=UNIT,
                                execution=ExecutionConfig(backend="thread"),
                                config=ReplicaConfig())
    rs.answer(KNNRequest((0.5, 0.5), k=2))
    rs.close()
    rs.close()
    for rep in rs.replicas:
        assert rep.server._pool is None


def test_query_service_close_reaches_the_bottom():
    rs = ReplicaSet.from_points(_points(), replicas=2, universe=UNIT,
                                config=ReplicaConfig())
    with QueryService(rs) as service:
        service.answer(KNNRequest((0.5, 0.5), k=2))
    service.close()  # second close after __exit__ is a no-op


def test_query_service_close_without_closable_server():
    from repro.core.server import LocationServer

    service = QueryService(LocationServer.from_points(_points(),
                                                      universe=UNIT))
    service.close()  # LocationServer has no close(); still a no-op
    service.close()
