"""Unit tests for the metrics registry primitives."""

import json
import threading

import pytest

from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_concurrent_increments_all_land(self):
        c = Counter("x")

        def hammer():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 80_000


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("x")
        g.set(3.5)
        g.add(-1.0)
        assert g.value == 2.5


class TestHistogram:
    def test_empty_snapshot(self):
        snap = Histogram("lat").snapshot()
        assert snap["count"] == 0
        assert snap["p50"] == 0.0

    def test_moments_are_exact(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.record(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.min == 1.0 and h.max == 4.0
        assert h.mean == 2.5

    def test_percentiles_on_known_distribution(self):
        h = Histogram("lat")
        for v in range(1, 101):  # 1..100
            h.record(float(v))
        assert h.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert h.percentile(95) == pytest.approx(95.0, abs=1.0)
        assert h.percentile(99) == pytest.approx(99.0, abs=1.0)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram("lat").percentile(101)

    def test_reservoir_stays_bounded_but_moments_exact(self):
        h = Histogram("lat", max_samples=64)
        for v in range(1000):
            h.record(float(v))
        assert h.count == 1000
        assert h.total == sum(range(1000))
        assert h.max == 999.0
        assert len(h._samples) == 64

    def test_snapshot_has_all_quantile_keys(self):
        h = Histogram("lat")
        h.record(7.0)
        snap = h.snapshot()
        assert set(snap) == {"count", "sum", "mean", "min", "max",
                             "p50", "p95", "p99", "retained_samples"}


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.gauge("g") is reg.gauge("g")

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("queries").inc(3)
        reg.gauge("fleet").set(8)
        reg.histogram("latency").record(1.25)
        text = reg.to_json()
        parsed = json.loads(text)
        assert parsed["counters"]["queries"] == 3
        assert parsed["gauges"]["fleet"] == 8.0
        assert parsed["histograms"]["latency"]["count"] == 1

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {}

    def test_concurrent_get_or_create(self):
        reg = MetricsRegistry()
        seen = []

        def worker():
            for i in range(200):
                c = reg.counter(f"c{i % 10}")
                c.inc()
            seen.append(True)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(v for v in reg.snapshot()["counters"].values())
        assert total == 8 * 200
