"""Soundness of stale-served validity regions (:mod:`repro.service.staleness`).

The property under test is the replicated tier's correctness contract:
for any dataset, any pending-mutation backlog and any query, the region
returned by :func:`shrunk_stale_region` is contained in the *fresh*
oracle's validity region — every probe point inside the shrunk region
must yield, against the fresh dataset (stale + backlog applied), exactly
the stale result that was served.  Hypothesis drives datasets, backlogs
and queries; probe points are sampled from the shrunk region itself.
``None`` (unserveable) is always a sound answer, so only returned
regions are checked.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.api import KNNRequest, RangeRequest, WindowRequest
from repro.core.server import LocationServer
from repro.geometry import Rect
from repro.service.staleness import Mutation, ServedResponse, shrunk_stale_region

UNIT = Rect(0.0, 0.0, 1.0, 1.0)
EPS = 1e-9


# ----------------------------------------------------------------------
# strategies: a stale dataset plus a pending backlog over it
# ----------------------------------------------------------------------
def _coord():
    # A lattice keeps coordinates exact and collisions detectable.
    return st.integers(1, 199).map(lambda v: v / 200.0)


@st.composite
def stale_worlds(draw):
    """(stale_points, pending) — oids 0..n-1 stale, 1000+ for inserts."""
    n = draw(st.integers(8, 24))
    coords = draw(st.lists(st.tuples(_coord(), _coord()),
                           min_size=n, max_size=n, unique=True))
    stale = {i: xy for i, xy in enumerate(coords)}
    pending = []
    used = set(coords)
    for j in range(draw(st.integers(1, 5))):
        if draw(st.booleans()):
            xy = draw(st.tuples(_coord(), _coord()))
            if xy in used:
                continue
            used.add(xy)
            pending.append(Mutation("insert", 1000 + j, xy[0], xy[1]))
        else:
            oid = draw(st.integers(0, n - 1))
            if any(m.oid == oid for m in pending):
                continue
            x, y = stale[oid]
            pending.append(Mutation("delete", oid, x, y))
    assume(pending)
    return stale, pending


def _fresh(stale, pending):
    fresh = dict(stale)
    for m in pending:
        if m.op == "insert":
            fresh[m.oid] = (m.x, m.y)
        else:
            fresh.pop(m.oid, None)
    return fresh


def _probes(region, q):
    """The query point plus a grid sample of the region's MBR."""
    out = [q]
    try:
        box = region.mbr()
    except ValueError:
        return out
    for i in range(1, 4):
        for j in range(1, 4):
            p = (box.xmin + i * (box.xmax - box.xmin) / 4.0,
                 box.ymin + j * (box.ymax - box.ymin) / 4.0)
            if region.contains(p):
                out.append(p)
    return out


def _knn_at(fresh, p, k):
    ranked = sorted((math.dist(xy, p), oid) for oid, xy in fresh.items())
    if len(ranked) > k and ranked[k][0] - ranked[k - 1][0] < EPS:
        return None  # tie at the boundary: oracle undefined
    return {oid for _, oid in ranked[:k]}


# ----------------------------------------------------------------------
# the containment property, per query type
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(world=stale_worlds(), qx=_coord(), qy=_coord(),
       k=st.integers(1, 4))
def test_stale_knn_region_contained_in_fresh_oracle(world, qx, qy, k):
    stale, pending = world
    server = LocationServer.from_points(
        [stale[i] for i in range(len(stale))], universe=UNIT)
    request = KNNRequest((qx, qy), k=k)
    response = server.answer(request)
    region = shrunk_stale_region(request, response, pending, UNIT)
    if region is None:
        return  # unserveable is always sound
    served = {e.oid for e in response.result}
    fresh = _fresh(stale, pending)
    for p in _probes(region, (qx, qy)):
        oracle = _knn_at(fresh, p, k)
        if oracle is not None:
            assert oracle == served, f"probe {p}: {oracle} != {served}"


@settings(max_examples=60, deadline=None)
@given(world=stale_worlds(), fx=_coord(), fy=_coord(),
       w=st.integers(2, 40).map(lambda v: v / 100.0),
       h=st.integers(2, 40).map(lambda v: v / 100.0))
def test_stale_window_region_contained_in_fresh_oracle(world, fx, fy, w, h):
    stale, pending = world
    server = LocationServer.from_points(
        [stale[i] for i in range(len(stale))], universe=UNIT)
    request = WindowRequest((fx, fy), w, h)
    response = server.answer(request)
    region = shrunk_stale_region(request, response, pending, UNIT)
    if region is None:
        return
    served = {e.oid for e in response.result}
    fresh = _fresh(stale, pending)
    for p in _probes(region, (fx, fy)):
        win = Rect(p[0] - w / 2, p[1] - h / 2, p[0] + w / 2, p[1] + h / 2)
        if any(abs(abs(x - p[0]) - w / 2) < EPS
               or abs(abs(y - p[1]) - h / 2) < EPS
               for x, y in fresh.values()):
            continue  # a fresh point sits on the window edge: undefined
        oracle = {oid for oid, xy in fresh.items() if win.contains_point(xy)}
        assert oracle == served, f"probe {p}: {oracle} != {served}"


@settings(max_examples=60, deadline=None)
@given(world=stale_worlds(), qx=_coord(), qy=_coord(),
       r=st.integers(2, 30).map(lambda v: v / 100.0))
def test_stale_range_region_contained_in_fresh_oracle(world, qx, qy, r):
    stale, pending = world
    server = LocationServer.from_points(
        [stale[i] for i in range(len(stale))], universe=UNIT)
    request = RangeRequest((qx, qy), r)
    response = server.answer(request)
    region = shrunk_stale_region(request, response, pending, UNIT)
    if region is None:
        return
    served = {e.oid for e in response.result}
    fresh = _fresh(stale, pending)
    for p in _probes(region, (qx, qy)):
        if any(abs(math.dist(xy, p) - r) < EPS for xy in fresh.values()):
            continue  # a fresh point sits on the range boundary
        oracle = {oid for oid, xy in fresh.items()
                  if math.dist(xy, p) <= r}
        assert oracle == served, f"probe {p}: {oracle} != {served}"


# ----------------------------------------------------------------------
# deterministic unserveable / passthrough cases
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_server():
    pts = [(0.2, 0.2), (0.8, 0.2), (0.5, 0.8), (0.3, 0.6)]
    return LocationServer.from_points(pts, universe=UNIT)


def test_empty_backlog_returns_region_unchanged(small_server):
    request = KNNRequest((0.5, 0.5), k=1)
    response = small_server.answer(request)
    assert shrunk_stale_region(request, response, [], UNIT) is response.region


def test_pending_delete_of_knn_member_is_unserveable(small_server):
    request = KNNRequest((0.31, 0.61), k=1)
    response = small_server.answer(request)
    victim = response.result[0]
    pending = [Mutation("delete", victim.oid, victim.x, victim.y)]
    assert shrunk_stale_region(request, response, pending, UNIT) is None


def test_pending_insert_at_query_point_is_unserveable(small_server):
    request = KNNRequest((0.5, 0.5), k=1)
    response = small_server.answer(request)
    pending = [Mutation("insert", 99, 0.5, 0.5)]
    assert shrunk_stale_region(request, response, pending, UNIT) is None


def test_pending_insert_inside_window_is_unserveable(small_server):
    request = WindowRequest((0.5, 0.5), 0.4, 0.4)
    response = small_server.answer(request)
    pending = [Mutation("insert", 99, 0.55, 0.45)]
    assert shrunk_stale_region(request, response, pending, UNIT) is None


def test_pending_insert_in_range_is_unserveable(small_server):
    request = RangeRequest((0.5, 0.5), 0.2)
    response = small_server.answer(request)
    pending = [Mutation("insert", 99, 0.6, 0.5)]
    assert shrunk_stale_region(request, response, pending, UNIT) is None


def test_far_insert_shrinks_range_validity(small_server):
    request = RangeRequest((0.2, 0.2), 0.1)
    response = small_server.answer(request)
    pending = [Mutation("insert", 99, 0.9, 0.9)]
    region = shrunk_stale_region(request, response, pending, UNIT)
    assert region is not None
    assert region.radius <= response.region.radius
    d = math.dist((0.9, 0.9), (0.2, 0.2))
    assert region.radius <= d - 0.1 + 1e-12


def test_mutation_validates_op():
    with pytest.raises(ValueError):
        Mutation("upsert", 1, 0.5, 0.5)


def test_served_response_proxies_inner(small_server):
    request = KNNRequest((0.5, 0.5), k=2)
    response = small_server.answer(request)
    wrapped = ServedResponse(response, replica_id=1, staleness=2,
                             valid_for_epoch=5, failovers=1)
    assert wrapped.result == response.result
    assert wrapped.detail is response.detail
    assert wrapped.region is response.region
    assert wrapped.transfer_bytes() == response.transfer_bytes()
    assert wrapped.neighbors == response.neighbors  # __getattr__ proxy
    copy = wrapped.with_inner(response)
    assert copy.staleness == 2 and copy.replica_id == 1
