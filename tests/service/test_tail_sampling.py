"""Tail-based trace sampling: decision-at-end retention in TraceBuffer."""

from __future__ import annotations

import pytest

from repro.service import QueryTrace, Span, TailSamplingConfig, TraceBuffer

pytestmark = pytest.mark.obs


def _trace(i: int, duration_ms: float = 1.0, error: str = None,
           degraded: bool = False, kind: str = "knn") -> QueryTrace:
    return QueryTrace(trace_id=f"t{i}", kind=kind, started_at=0.0,
                      duration_ms=duration_ms, error=error,
                      degraded=degraded,
                      spans=[Span("index_descent", 0.0, duration_ms,
                                  span_id=f"s{i}")])


def test_config_validation():
    with pytest.raises(ValueError):
        TailSamplingConfig(keep_1_in=0)
    with pytest.raises(ValueError):
        TailSamplingConfig(slow_ms=0.0)
    with pytest.raises(ValueError):
        TailSamplingConfig(decision_window=-1)


def test_errored_degraded_and_slow_always_kept():
    buf = TraceBuffer(capacity=64, tail=TailSamplingConfig(
        keep_1_in=1000, slow_ms=50.0, decision_window=0))
    buf.append(_trace(0, error="boom"))
    buf.append(_trace(1, degraded=True))
    buf.append(_trace(2, duration_ms=80.0))
    reasons = {t.trace_id: t.retention_reason for t in buf.recent()}
    assert reasons == {"t0": "error", "t1": "degraded", "t2": "slow"}


def test_healthy_downsampled_deterministically():
    buf = TraceBuffer(capacity=64, tail=TailSamplingConfig(
        keep_1_in=3, decision_window=0))
    for i in range(9):
        buf.append(_trace(i))
    kept = [t.trace_id for t in buf.recent()]
    assert kept == ["t0", "t3", "t6"]  # 1-in-3: the 1st, 4th, 7th
    stats = buf.sampling_stats()
    assert stats["healthy_seen"] == 9
    assert stats["downsampled"] == 6
    assert stats["retained_by_reason"] == {"sampled": 3}


def test_pending_window_keeps_newest_findable():
    """A healthy trace that will be downsampled stays findable until it
    ages out of the decision window."""
    buf = TraceBuffer(capacity=64, tail=TailSamplingConfig(
        keep_1_in=1000, decision_window=4))
    buf.append(_trace(0))            # sampled (the 1st healthy)
    buf.append(_trace(1))            # verdict: drop — but still pending
    assert buf.find("t1") is not None
    assert buf.find("t1").retention_reason is None
    for i in range(2, 7):            # age t1 out of the 4-deep window
        buf.append(_trace(i))
    assert buf.find("t1") is None
    assert buf.find("t0") is not None          # committed to the ring
    assert buf.sampling_stats()["downsampled"] >= 1


def test_slo_violation_check_pins_traces():
    buf = TraceBuffer(capacity=64, tail=TailSamplingConfig(
        keep_1_in=1000, decision_window=0))
    buf.violation_check = (
        lambda kind, ms: "lat-slo" if ms > 10.0 else None)
    buf.append(_trace(0, duration_ms=5.0))     # healthy → 1-in-N
    buf.append(_trace(1, duration_ms=25.0))    # violates → pinned
    reasons = {t.trace_id: t.retention_reason for t in buf.recent()}
    assert reasons == {"t0": "sampled", "t1": "slo:lat-slo"}
    assert buf.sampling_stats()["retained_by_reason"]["slo"] == 1


def test_retention_reason_annotates_root_span():
    buf = TraceBuffer(capacity=64, tail=TailSamplingConfig(
        decision_window=0))
    buf.append(_trace(0, error="boom"))
    [trace] = buf.recent()
    assert trace.spans[0].meta["retention_reason"] == "error"
    assert trace.as_dict()["retention_reason"] == "error"


def test_ring_capacity_still_bounds_retained():
    buf = TraceBuffer(capacity=3, tail=TailSamplingConfig(
        keep_1_in=1, decision_window=0))
    for i in range(10):
        buf.append(_trace(i, error="x"))
    assert len(buf.recent()) == 3
    assert buf.dropped > 0


def test_without_tail_config_behavior_is_legacy():
    buf = TraceBuffer(capacity=4)
    for i in range(6):
        buf.append(_trace(i))
    assert [t.trace_id for t in buf.recent()] == ["t2", "t3", "t4", "t5"]
    assert all(t.retention_reason is None for t in buf.recent())
    stats = buf.sampling_stats()
    assert stats["tail_sampling"] is False
    assert stats["downsampled"] == 0


def test_query_service_end_to_end_tail_sampling(uniform_1k):
    """Through the real service: errors pinned, healthy downsampled."""
    from repro.core import LocationServer
    from repro.core.api import KNNRequest
    from repro.service import QueryService

    service = QueryService(
        LocationServer.from_points(uniform_1k),
        tail=TailSamplingConfig(keep_1_in=5, decision_window=0))
    for i in range(10):
        service.answer(KNNRequest((0.1 + 0.05 * i, 0.5), k=2))
    with pytest.raises(TypeError):
        service.answer("nonsense")
    reasons = [t.retention_reason for t in service.recent_traces()]
    assert reasons.count("sampled") == 2      # 10 healthy, 1-in-5
    assert reasons.count("error") == 1
    snap = service.stats_snapshot()["service"]["trace_sampling"]
    assert snap["tail_sampling"] is True
    assert snap["downsampled"] == 8
