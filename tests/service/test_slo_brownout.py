"""End-to-end: budget burn drives brownout through the whole service.

A fault burst burns the availability budget → the fast alert fires
within the (simulated) 5-minute window → the SLO engine's recommended
level becomes the admission controller's floor → the brownout event is
logged → good traffic after the window clears restores normal service.
Everything runs on a fake clock injected into the SLO engine, so the
test is deterministic and sleeps for nothing.
"""

from __future__ import annotations

import pytest

from repro.core import LocationServer
from repro.core.api import KNNRequest
from repro.obs import SLOConfig, SLOEngine
from repro.service import (
    AdmissionConfig,
    AdmissionRejectedError,
    QueryService,
    ResilienceConfig,
)

pytestmark = pytest.mark.obs


class FakeClock:
    def __init__(self, t: float = 1000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, s: float) -> None:
        self.t += s


class Bogus:
    """An unanswerable request: every answer() raises TypeError."""

    kind = "bogus"
    trace_id = None


@pytest.fixture()
def parts(uniform_1k):
    clock = FakeClock()
    engine = SLOEngine(
        [SLOConfig(name="availability", objective="availability",
                   target=0.9, fast_burn=2.0)],
        clock=clock, eval_interval_s=0.0)
    service = QueryService(
        LocationServer.from_points(uniform_1k),
        resilience=ResilienceConfig(
            admission=AdmissionConfig(max_concurrency=8)),
        slo=engine)
    return service, engine, clock


def _good(service, n: int) -> None:
    for i in range(n):
        service.answer(KNNRequest((0.1 + (i % 8) * 0.1, 0.5), k=2))


def _bad(service, n: int) -> None:
    """Issue n failing queries; once brownout escalates to reject the
    gate sheds them before they can fail."""
    for _ in range(n):
        with pytest.raises((TypeError, AdmissionRejectedError)):
            service.answer(Bogus())


def test_burst_burns_budget_browns_out_and_recovers(parts):
    service, engine, clock = parts

    # Healthy steady state: plenty of good history, no alert.
    _good(service, 400)
    assert engine.recommended_level() == 0
    assert service.admission.slo_level == 0

    # Age the good history out of the fast (5m/1h) windows — it still
    # pads the 3-day budget window, so the budget is not exhausted.
    clock.advance(7200.0)

    # Fault burst: 30% of recent traffic fails → the 5m/1h burn crosses
    # fast_burn (2.0) but stays under 2x, and budget remains — exactly
    # the "reduced" rung.  The floor sheds load even though queue depth
    # never moved.
    _good(service, 70)
    _bad(service, 30)
    assert engine.recommended_level() == 1
    assert service.admission.slo_level == engine.recommended_level()
    snap = engine.snapshot()
    assert snap["slos"]["availability"]["fast_alert"] is True
    assert snap["brownout"] != "normal"
    assert service.admission.snapshot()["slo_level"] == snap["brownout"]

    # The transition was logged as a structured event.
    events = service.events.tail(category="slo")
    assert events and events[0]["event"] == "slo.brownout"
    assert events[0]["previous"] == "normal"

    # Recovery: once the 5-minute window forgets the burst, good
    # traffic clears the fast alert and the floor drops back to normal.
    clock.advance(400.0)
    _good(service, 40)
    assert engine.recommended_level() == 0
    assert service.admission.slo_level == 0
    assert service.admission.snapshot()["slo_level"] == "normal"
    transitions = [(e["previous"], e["level"])
                   for e in service.events.tail(category="slo")]
    assert transitions[0][0] == "normal"       # up from normal ...
    assert transitions[-1][1] == "normal"      # ... and back down


def test_total_outage_escalates_to_reject_and_sheds(parts):
    service, engine, clock = parts
    _bad(service, 30)   # 100% errors: budget gone in every window
    assert engine.recommended_level() == 3
    assert service.admission.slo_level == 3
    # The gate now sheds everything — in microseconds, not via timeout.
    with pytest.raises(AdmissionRejectedError):
        service.answer(KNNRequest((0.5, 0.5), k=1))


def test_admission_sheds_are_not_slo_symptoms(parts):
    """Rejected queries must not count as bad, or brownout locks in."""
    service, engine, clock = parts
    _bad(service, 30)
    assert engine.recommended_level() == 3
    before = engine.snapshot()["slos"]["availability"]["observed"]
    for _ in range(20):
        with pytest.raises(AdmissionRejectedError):
            service.answer(KNNRequest((0.5, 0.5), k=1))
    after = engine.snapshot()["slos"]["availability"]["observed"]
    assert after == before  # sheds are mitigation, not symptom

    # ... which is exactly what lets the windows drain and service heal.
    clock.advance(400.0)
    engine.evaluate()
    assert engine.recommended_level() == 0


def test_slo_section_in_stats_snapshot(parts):
    service, engine, clock = parts
    _good(service, 5)
    snap = service.stats_snapshot()
    assert snap["slo"]["brownout"] == "normal"
    assert "availability" in snap["slo"]["slos"]
