"""Unit tests for the service-wide retry budget (:mod:`repro.service.retry`).

The budget is the global back-pressure valve: per-query retry caps
bound one request's amplification, but N concurrent queries retrying at
once is a retry storm precisely when capacity just dropped.  These
tests pin the rolling-window semantics with a fake clock and verify the
QueryService surfaces exhaustion as an immediate failure plus the
``service.retry_budget.exhausted`` counter.
"""

from __future__ import annotations

import random

import pytest

from repro.core.api import KNNRequest
from repro.core.server import LocationServer
from repro.geometry import Rect
from repro.service import (
    QueryService,
    ResilienceConfig,
    RetryBudgetConfig,
    RetryPolicy,
    call_with_retry,
)
from repro.service.retry import RetryBudget
from repro.storage import PageReadError

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class _Transient(Exception):
    transient = True


# ----------------------------------------------------------------------
# the rolling window
# ----------------------------------------------------------------------
def test_budget_caps_retries_per_window():
    clock = FakeClock()
    budget = RetryBudget(RetryBudgetConfig(max_retries=2, window_s=1.0),
                         clock=clock)
    assert budget.try_spend() is True
    assert budget.try_spend() is True
    assert budget.try_spend() is False
    assert budget.exhausted == 1
    # The window slides: old spends expire and capacity returns.
    clock.advance(1.1)
    assert budget.try_spend() is True
    assert budget.exhausted == 1


def test_budget_window_expires_incrementally():
    clock = FakeClock()
    budget = RetryBudget(RetryBudgetConfig(max_retries=2, window_s=1.0),
                         clock=clock)
    budget.try_spend()          # t=0.0
    clock.advance(0.6)
    budget.try_spend()          # t=0.6
    clock.advance(0.5)          # t=1.1: only the first spend has expired
    assert budget.try_spend() is True
    assert budget.try_spend() is False


def test_zero_budget_never_grants():
    budget = RetryBudget(RetryBudgetConfig(max_retries=0))
    assert budget.try_spend() is False
    assert budget.exhausted == 1


def test_budget_snapshot():
    clock = FakeClock()
    budget = RetryBudget(RetryBudgetConfig(max_retries=4, window_s=2.0),
                         clock=clock)
    budget.try_spend()
    budget.try_spend()
    assert budget.snapshot() == {
        "in_window": 2, "max_retries": 4, "window_s": 2.0, "exhausted": 0,
    }


def test_config_validation():
    with pytest.raises(ValueError):
        RetryBudgetConfig(max_retries=-1)
    with pytest.raises(ValueError):
        RetryBudgetConfig(window_s=0.0)


# ----------------------------------------------------------------------
# call_with_retry integration
# ----------------------------------------------------------------------
def test_call_with_retry_stops_when_budget_spent():
    calls = []

    def always_fails():
        calls.append(1)
        raise _Transient("still down")

    budget = RetryBudget(RetryBudgetConfig(max_retries=1))
    policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
    with pytest.raises(_Transient):
        call_with_retry(always_fails, policy, sleep=lambda _: None,
                        budget=budget)
    assert len(calls) == 2  # first try + the single budgeted retry
    assert budget.exhausted == 1


def test_shared_budget_spans_calls():
    budget = RetryBudget(RetryBudgetConfig(max_retries=1))
    policy = RetryPolicy(max_attempts=2, base_delay_s=0.0)

    def flaky_once(state=[0]):
        state[0] += 1
        if state[0] == 1:
            raise _Transient()
        return "ok"

    assert call_with_retry(flaky_once, policy, sleep=lambda _: None,
                           budget=budget) == "ok"

    def always_fails():
        raise _Transient()

    # The earlier call spent the whole budget; no retry happens now.
    calls = []
    with pytest.raises(_Transient):
        call_with_retry(lambda: (calls.append(1), always_fails())[1],
                        policy, sleep=lambda _: None, budget=budget)
    assert len(calls) == 1


# ----------------------------------------------------------------------
# QueryService integration
# ----------------------------------------------------------------------
class FlakyServer:
    """Delegates to a real server, failing the first ``failures`` answers."""

    def __init__(self, inner: LocationServer, failures: int):
        self._inner = inner
        self._failures = failures

    def answer(self, request):
        if self._failures > 0:
            self._failures -= 1
            raise PageReadError(1, "nn", 1)
        return self._inner.answer(request)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _flaky_service(failures: int, max_retries: int) -> QueryService:
    rng = random.Random(5)
    points = [(rng.random(), rng.random()) for _ in range(200)]
    server = FlakyServer(LocationServer.from_points(points, universe=UNIT),
                         failures)
    resilience = ResilienceConfig(
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.0, max_delay_s=0.0,
                          jitter="none"),
        breaker=None,
        retry_budget=RetryBudgetConfig(max_retries=max_retries, window_s=60.0))
    return QueryService(server, resilience=resilience, sleep=lambda _: None)


def test_service_retry_within_budget_succeeds():
    service = _flaky_service(failures=1, max_retries=4)
    resp = service.answer(KNNRequest((0.5, 0.5), k=2))
    assert len(resp.result) == 2
    counters = service.metrics.snapshot()["counters"]
    assert counters["service.retries"] == 1
    assert "service.retry_budget.exhausted" not in counters
    assert service.stats_snapshot()["resilience"]["retry_budget"] == {
        "in_window": 1, "max_retries": 4, "window_s": 60.0, "exhausted": 0,
    }


def test_service_exhausted_budget_fails_fast():
    service = _flaky_service(failures=10, max_retries=1)
    # Query 1 spends the whole budget (1 retry) and still fails.
    with pytest.raises(PageReadError):
        service.answer(KNNRequest((0.5, 0.5), k=2))
    # Query 2's failure is not retried at all: budget is spent.
    with pytest.raises(PageReadError):
        service.answer(KNNRequest((0.2, 0.8), k=2))
    counters = service.metrics.snapshot()["counters"]
    assert counters["service.retries"] == 1
    assert counters["service.retry_budget.exhausted"] >= 1
    events = [e for e in service.events.tail(50)
              if e.get("event") == "retry.budget_exhausted"]
    assert events


def test_service_without_budget_retries_freely():
    rng = random.Random(5)
    points = [(rng.random(), rng.random()) for _ in range(200)]
    server = FlakyServer(LocationServer.from_points(points, universe=UNIT),
                         failures=2)
    service = QueryService(
        server, sleep=lambda _: None,
        resilience=ResilienceConfig(
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.0,
                              max_delay_s=0.0, jitter="none"),
            breaker=None))
    resp = service.answer(KNNRequest((0.5, 0.5), k=2))
    assert len(resp.result) == 2
    assert service.metrics.snapshot()["counters"]["service.retries"] == 2
