"""Unit tests for admission control (:mod:`repro.service.admission`).

Covers the concurrency gate, the fast-reject paths (queue full,
deadline-aware — both must decide without sleeping), the queue timeout,
the brownout ladder thresholds, and the QueryService integration
(reject / cache-only / reduced behaviours, metered end to end).
"""

from __future__ import annotations

import random
import threading
from time import perf_counter

import pytest

from repro.core.api import KNNRequest, QueryBudget
from repro.geometry import Rect
from repro.service import (
    AdmissionConfig,
    AdmissionController,
    AdmissionRejectedError,
    CacheConfig,
    ResilienceConfig,
    build_service,
)
from repro.service.admission import (
    LEVEL_CACHE_ONLY,
    LEVEL_NORMAL,
    LEVEL_REDUCED,
    LEVEL_REJECT,
)

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


# ----------------------------------------------------------------------
# the gate
# ----------------------------------------------------------------------
def test_immediate_grant_under_capacity():
    ctl = AdmissionController(AdmissionConfig(max_concurrency=2))
    assert ctl.try_acquire() == 0.0
    assert ctl.try_acquire() == 0.0
    assert ctl.inflight == 2
    assert ctl.accepted == 2
    ctl.release(latency_ms=1.0)
    ctl.release(latency_ms=1.0)
    assert ctl.inflight == 0


def test_queue_full_fast_reject_never_sleeps():
    ctl = AdmissionController(AdmissionConfig(max_concurrency=1,
                                              max_queue_depth=0))
    ctl.try_acquire()
    t0 = perf_counter()
    with pytest.raises(AdmissionRejectedError) as exc_info:
        ctl.try_acquire()
    elapsed_ms = (perf_counter() - t0) * 1e3
    assert elapsed_ms < 10.0  # decided without queueing, i.e. no sleep
    assert ctl.rejected_queue_full == 1
    assert exc_info.value.transient is True


def test_deadline_aware_fast_reject():
    ctl = AdmissionController(AdmissionConfig(max_concurrency=1,
                                              max_queue_depth=8,
                                              ewma_alpha=1.0))
    # Teach the estimator that execution takes ~100 ms.
    ctl.try_acquire()
    ctl.release(latency_ms=100.0)
    ctl.try_acquire()  # occupy the only slot
    t0 = perf_counter()
    with pytest.raises(AdmissionRejectedError):
        ctl.try_acquire(deadline_ms=5.0)  # est wait ~100ms >> 5ms
    assert (perf_counter() - t0) * 1e3 < 10.0
    assert ctl.rejected_deadline == 1
    # A generous deadline is allowed to queue (and times out instead).
    with pytest.raises(AdmissionRejectedError):
        ctl.try_acquire(deadline_ms=10_000.0)
    assert ctl.rejected_timeout == 1


def test_queue_timeout_is_bounded():
    ctl = AdmissionController(AdmissionConfig(max_concurrency=1,
                                              queue_timeout_ms=20.0))
    ctl.try_acquire()
    t0 = perf_counter()
    with pytest.raises(AdmissionRejectedError):
        ctl.try_acquire()
    elapsed_ms = (perf_counter() - t0) * 1e3
    assert 10.0 <= elapsed_ms < 500.0
    assert ctl.rejected_timeout == 1
    assert ctl.queued == 0  # the queue slot was returned


def test_queued_request_gets_slot_when_released():
    ctl = AdmissionController(AdmissionConfig(max_concurrency=1,
                                              queue_timeout_ms=2_000.0))
    ctl.try_acquire()
    timer = threading.Timer(0.02, ctl.release)
    timer.start()
    wait_ms = ctl.try_acquire()
    timer.join()
    assert wait_ms > 0.0
    assert ctl.inflight == 1


def test_release_is_floored_at_zero():
    ctl = AdmissionController()
    ctl.release()
    assert ctl.inflight == 0


# ----------------------------------------------------------------------
# the brownout ladder
# ----------------------------------------------------------------------
def test_ladder_thresholds():
    ctl = AdmissionController(AdmissionConfig(
        max_concurrency=4, reduce_at=1.0, cache_only_at=1.5, reject_at=2.0))
    assert ctl._level_for(0.0) == LEVEL_NORMAL
    assert ctl._level_for(0.99) == LEVEL_NORMAL
    assert ctl._level_for(1.0) == LEVEL_REDUCED
    assert ctl._level_for(1.5) == LEVEL_CACHE_ONLY
    assert ctl._level_for(2.0) == LEVEL_REJECT
    ctl.forced_level = LEVEL_REJECT
    assert ctl._level_for(0.0) == LEVEL_REJECT


def test_level_tracks_inflight():
    ctl = AdmissionController(AdmissionConfig(max_concurrency=2,
                                              reduce_at=1.0))
    assert ctl.level() == LEVEL_NORMAL
    ctl.try_acquire()
    ctl.try_acquire()
    assert ctl.load_factor() == 1.0
    assert ctl.level() == LEVEL_REDUCED


def test_config_validation():
    with pytest.raises(ValueError):
        AdmissionConfig(max_concurrency=0)
    with pytest.raises(ValueError):
        AdmissionConfig(reduce_at=2.0, cache_only_at=1.0)
    with pytest.raises(ValueError):
        AdmissionConfig(cache_only_shrink=0.0)


def test_snapshot_is_consistent():
    ctl = AdmissionController(AdmissionConfig(max_concurrency=2))
    ctl.try_acquire()
    snap = ctl.snapshot()
    assert snap["inflight"] == 1
    assert snap["load_factor"] == 0.5
    assert snap["level"] == "normal"
    assert snap["accepted"] == 1


# ----------------------------------------------------------------------
# QueryService integration
# ----------------------------------------------------------------------
@pytest.fixture()
def admitted_service():
    rng = random.Random(11)
    points = [(rng.random(), rng.random()) for _ in range(400)]
    service = build_service(
        points, universe=UNIT,
        cache=CacheConfig(capacity=64),
        resilience=ResilienceConfig(admission=AdmissionConfig()))
    yield service
    service.close()


def test_service_reject_level_sheds_everything(admitted_service):
    admitted_service.admission.forced_level = LEVEL_REJECT
    with pytest.raises(AdmissionRejectedError):
        admitted_service.answer(KNNRequest((0.5, 0.5)))
    counters = admitted_service.metrics.snapshot()["counters"]
    assert counters["service.admission.rejected"] == 1
    assert counters["service.errors"] == 1


def test_service_cache_only_serves_hits_with_extra_shrink(admitted_service):
    req = KNNRequest((0.5, 0.5), k=2)
    fresh = admitted_service.answer(req)  # primes the cache
    admitted_service.admission.forced_level = LEVEL_CACHE_ONLY
    browned = admitted_service.answer(req)
    assert {e.oid for e in browned.result} == {e.oid for e in fresh.result}
    assert browned.region.contains((0.5, 0.5))
    # The brownout region is a strict subset of the cached one.
    fb = fresh.region.mbr()
    bb = browned.region.mbr()
    assert (bb.xmax - bb.xmin) <= (fb.xmax - fb.xmin)
    counters = admitted_service.metrics.snapshot()["counters"]
    assert counters["service.admission.brownout.cache_only"] == 1
    # A miss at cache_only level is fast-rejected.
    with pytest.raises(AdmissionRejectedError):
        admitted_service.answer(KNNRequest((0.11, 0.87), k=3))


def test_service_reduced_level_clamps_budget(admitted_service):
    admitted_service.admission.forced_level = LEVEL_REDUCED
    resp = admitted_service.answer(KNNRequest((0.4, 0.6), k=2))
    assert len(resp.result) == 2  # still a correct, exact result
    counters = admitted_service.metrics.snapshot()["counters"]
    assert counters["service.admission.brownout.reduced"] == 1


def test_service_reduced_level_respects_explicit_budget(admitted_service):
    admitted_service.admission.forced_level = LEVEL_REDUCED
    budget = QueryBudget(max_node_accesses=10_000)
    admitted_service.answer(KNNRequest((0.4, 0.6), k=2, budget=budget))
    counters = admitted_service.metrics.snapshot()["counters"]
    assert "service.admission.brownout.reduced" not in counters


def test_service_meters_accepted_queries(admitted_service):
    admitted_service.answer(KNNRequest((0.5, 0.5)))
    counters = admitted_service.metrics.snapshot()["counters"]
    assert counters["service.admission.accepted"] == 1
    snap = admitted_service.stats_snapshot()
    assert snap["admission"]["accepted"] == 1
    assert snap["admission"]["level"] == "normal"


def test_service_rejection_is_never_retried(admitted_service):
    admitted_service.admission.forced_level = LEVEL_REJECT
    with pytest.raises(AdmissionRejectedError):
        admitted_service.answer(KNNRequest((0.5, 0.5)))
    counters = admitted_service.metrics.snapshot()["counters"]
    assert "service.retries" not in counters
