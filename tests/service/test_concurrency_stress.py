"""Concurrency stress: exact counters and deadlock-free batch dispatch.

The metrics registry promises lossless accounting under concurrency,
and the query service promises that batched dispatch over a pool —
even with injected disk latency and injected faults — always drains.
Both claims are exact, so the tests assert exact totals, and a
watchdog timeout turns a deadlock into a failure instead of a hang.
"""

from __future__ import annotations

import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import LocationServer
from repro.core.api import KNNRequest, QueryBudget, RangeRequest, WindowRequest
from repro.service import (
    BreakerConfig,
    MetricsRegistry,
    QueryService,
    ResilienceConfig,
    RetryPolicy,
)
from repro.storage import FaultPlan, inject_faults

pytestmark = pytest.mark.chaos


def _run_threads(target, num_threads: int, timeout_s: float = 30.0):
    """Start ``num_threads`` of ``target(tid)``; join with a watchdog."""
    errors = []

    def wrapped(tid):
        try:
            target(tid)
        except BaseException as exc:  # surfaced after the join
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(t,), daemon=True)
               for t in range(num_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout_s)
    alive = [t for t in threads if t.is_alive()]
    assert not alive, f"deadlock: {len(alive)} threads still running"
    assert not errors, f"worker raised: {errors[0]!r}"


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
def test_counter_is_exact_under_contention():
    registry = MetricsRegistry()
    threads, per_thread = 16, 5_000

    def hammer(tid):
        counter = registry.counter("stress.hits")
        for _ in range(per_thread):
            counter.inc()
        registry.counter(f"stress.thread.{tid}").inc(per_thread)

    _run_threads(hammer, threads)
    snap = registry.snapshot()["counters"]
    assert snap["stress.hits"] == threads * per_thread
    for tid in range(threads):
        assert snap[f"stress.thread.{tid}"] == per_thread


def test_histogram_records_every_sample_under_contention():
    registry = MetricsRegistry()
    threads, per_thread = 8, 2_000

    def hammer(tid):
        hist = registry.histogram("stress.latency")
        for i in range(per_thread):
            hist.record(float(tid * per_thread + i))

    _run_threads(hammer, threads)
    hist = registry.snapshot()["histograms"]["stress.latency"]
    assert hist["count"] == threads * per_thread


def test_gauge_last_write_wins_but_never_corrupts():
    registry = MetricsRegistry()

    def hammer(tid):
        g = registry.gauge("stress.level")
        for i in range(1_000):
            g.set(float(tid))
            g.add(0.0)

    _run_threads(hammer, 8)
    assert registry.gauge("stress.level").value in [float(t) for t in range(8)]


# ----------------------------------------------------------------------
# service dispatch under injected latency and faults
# ----------------------------------------------------------------------
def _service(points, latency: bool, faults: bool):
    server = LocationServer.from_points(points)
    service = QueryService(server, resilience=ResilienceConfig(
        retry=RetryPolicy(max_attempts=3, base_delay_s=1e-4,
                          max_delay_s=1e-3),
        breaker=BreakerConfig(failure_threshold=10_000),  # stay closed
    ))
    plan = FaultPlan(
        seed=17,
        read_failure_rate=0.02 if faults else 0.0,
        latency_mean_s=1e-5 if latency else 0.0,
        latency_rate=0.5,
    )
    if latency or faults:
        inject_faults(server.tree, plan)
    return service


def _requests(n, seed=0):
    rnd = random.Random(seed)
    reqs = []
    for i in range(n):
        pos = (rnd.random(), rnd.random())
        if i % 3 == 0:
            reqs.append(KNNRequest(pos, k=1 + i % 4))
        elif i % 3 == 1:
            reqs.append(WindowRequest(pos, 0.08, 0.08))
        else:
            reqs.append(RangeRequest(pos, 0.05))
    return reqs


def test_dispatch_batch_drains_under_injected_latency(uniform_1k):
    service = _service(uniform_1k, latency=True, faults=False)
    requests = _requests(60)
    done = {}

    def run():
        with ThreadPoolExecutor(max_workers=8) as pool:
            done["responses"] = service.dispatch_batch(requests,
                                                       executor=pool)

    worker = threading.Thread(target=run, daemon=True)
    worker.start()
    worker.join(timeout=60.0)
    assert not worker.is_alive(), "dispatch_batch deadlocked"
    responses = done["responses"]
    assert len(responses) == len(requests)
    # Order preserved: response i answers request i.
    for req, resp in zip(requests, responses):
        if isinstance(req, KNNRequest):
            assert len(resp.result) == req.k
    counters = service.metrics.snapshot()["counters"]
    assert counters["service.queries"] == len(requests)
    assert counters["service.batches"] == 1


def test_concurrent_batches_account_every_query_exactly(uniform_1k):
    """Many threads dispatching batches (with retries happening inside):
    the per-kind query counters still sum exactly."""
    service = _service(uniform_1k, latency=True, faults=True)
    threads, per_batch = 8, 15

    def hammer(tid):
        requests = _requests(per_batch, seed=tid)
        for req in requests:
            try:
                service.answer(req)
            except Exception as exc:
                if not getattr(exc, "transient", False):
                    raise

    _run_threads(hammer, threads, timeout_s=60.0)
    counters = service.metrics.snapshot()["counters"]
    total = threads * per_batch
    answered = counters.get("service.queries", 0)
    errored = counters.get("service.errors", 0)
    assert answered + errored == total
    by_kind = sum(counters.get(f'service.queries{{query_kind="{kind}"}}', 0)
                  for kind in ("knn", "window", "range"))
    errors_by_kind = sum(
        counters.get(f'service.errors{{query_kind="{kind}"}}', 0)
        for kind in ("knn", "window", "range"))
    assert by_kind == answered
    assert errors_by_kind == errored


def test_budgeted_batch_under_latency_degrades_but_completes(uniform_1k):
    service = _service(uniform_1k, latency=True, faults=False)
    budget = QueryBudget(max_node_accesses=5)
    requests = [KNNRequest((0.1 + 0.01 * i, 0.5), k=3, budget=budget)
                for i in range(30)]
    with ThreadPoolExecutor(max_workers=6) as pool:
        responses = service.dispatch_batch(requests, executor=pool)
    assert len(responses) == 30
    degraded = [r for r in responses if r.detail.degraded]
    assert degraded, "tight budget should degrade some responses"
    counters = service.metrics.snapshot()["counters"]
    assert counters.get("service.degraded", 0) == len(degraded)
