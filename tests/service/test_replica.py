"""Unit tests for the replicated serving tier (:mod:`repro.service.replica`).

Covers consistent-hash routing affinity, transparent failover, the
deterministic breaker ejection/recovery sequence (fake clock), staleness
bounds (skips, stale-served annotations, unserveable failover), mutation
replication and the sync barrier, and the QueryService composition.
"""

from __future__ import annotations

import random

import pytest

from repro.core.api import KNNRequest, RangeRequest, WindowRequest
from repro.geometry import Rect
from repro.service import (
    BreakerConfig,
    QueryService,
    ReplicaConfig,
    ReplicaSet,
    ServedResponse,
)
from repro.service.replica import NoReplicaAvailableError

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture(scope="module")
def points():
    rng = random.Random(7)
    return [(rng.random(), rng.random()) for _ in range(300)]


def make_set(points, *, replicas=3, lag=0, max_stale=None, clock=None,
             breaker=BreakerConfig(failure_threshold=2, reset_timeout_s=5.0)):
    cfg = ReplicaConfig(replication_lag=lag, default_max_stale=max_stale,
                        breaker=breaker)
    return ReplicaSet.from_points(points, replicas=replicas, universe=UNIT,
                                  config=cfg, clock=clock)


def affine_rid(rs, request) -> int:
    """The replica consistent hashing prefers for this request."""
    return rs._candidates(request)[0].rid


def request_for_rid(rs, rid, k=2):
    """A kNN request whose affinity lands on replica ``rid``."""
    rng = random.Random(0)
    for _ in range(500):
        req = KNNRequest((rng.random(), rng.random()), k=k)
        if affine_rid(rs, req) == rid:
            return req
    raise AssertionError(f"no location routed to replica {rid}")


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
def test_affinity_is_sticky(points):
    rs = make_set(points)
    req = KNNRequest((0.41, 0.63), k=3)
    rids = {rs.answer(req).replica_id for _ in range(5)}
    assert len(rids) == 1  # same location keeps hitting the same replica


def test_routing_spreads_across_replicas(points):
    rs = make_set(points)
    rng = random.Random(3)
    rids = {rs.answer(KNNRequest((rng.random(), rng.random()))).replica_id
            for _ in range(60)}
    assert rids == {0, 1, 2}


def test_answer_is_annotated(points):
    rs = make_set(points)
    resp = rs.answer(KNNRequest((0.5, 0.5), k=2))
    assert isinstance(resp, ServedResponse)
    assert resp.staleness == 0
    assert resp.failovers == 0
    assert resp.epoch == rs.epoch
    assert resp.valid_for_epoch == rs.epoch
    assert len(resp.result) == 2
    assert resp.region.contains((0.5, 0.5))


# ----------------------------------------------------------------------
# failover and the ejection/recovery sequence
# ----------------------------------------------------------------------
def test_failover_on_killed_replica(points):
    rs = make_set(points)
    req = KNNRequest((0.3, 0.7), k=2)
    victim = affine_rid(rs, req)
    fresh = rs.answer(req)
    rs.kill(victim)
    resp = rs.answer(req)
    assert resp.replica_id != victim
    assert resp.failovers == 1
    assert {e.oid for e in resp.result} == {e.oid for e in fresh.result}
    assert rs.failovers >= 1


def test_breaker_ejects_then_recovers_deterministically(points):
    clock = FakeClock()
    rs = make_set(points, clock=clock,
                  breaker=BreakerConfig(failure_threshold=2,
                                        reset_timeout_s=5.0))
    req = KNNRequest((0.3, 0.7), k=2)
    victim = affine_rid(rs, req)
    rs.kill(victim)

    # Two failing attempts trip the victim's breaker (threshold=2),
    # each one failing over to a healthy replica mid-flight.
    for _ in range(2):
        assert rs.answer(req).replica_id != victim
    assert rs.replicas[victim].state == "down"
    assert rs.replicas[victim].breaker.state == "open"
    assert rs.failovers == 2

    # Ejected: requests now skip the victim without attempting it.
    before = rs.failovers
    resp = rs.answer(req)
    assert resp.replica_id != victim and resp.failovers == 0
    assert rs.failovers == before
    assert rs.ejected_skips >= 1

    # Recovery: revive, pass the reset timeout, health-probe half-open.
    rs.revive(victim)
    clock.advance(5.1)
    assert rs.replicas[victim].state == "half_open"
    rows = rs.probe_health()
    assert rows[victim]["status"] == "ok"
    assert rs.replicas[victim].state == "closed"
    assert rs.answer(req).replica_id == victim


def test_probe_health_reports_dead_replica(points):
    rs = make_set(points)
    rs.kill(2)
    rows = rs.probe_health()
    assert rows[2]["status"] == "failed"
    assert rows[2]["alive"] is False
    # Repeated probes alone eject it, without user traffic.
    rs.probe_health()
    assert rs.replicas[2].breaker.state == "open"


def test_all_replicas_dead_raises_transient(points):
    rs = make_set(points, replicas=2, breaker=None)
    rs.kill(0)
    rs.kill(1)
    with pytest.raises(Exception) as exc_info:
        rs.answer(KNNRequest((0.5, 0.5)))
    assert getattr(exc_info.value, "transient", False)


# ----------------------------------------------------------------------
# staleness bounds
# ----------------------------------------------------------------------
def test_fresh_default_skips_lagging_replica(points):
    rs = make_set(points, replicas=2, lag=10)
    rs.insert_object(9001, 0.91, 0.91)
    rs.insert_object(9002, 0.93, 0.93)
    assert rs.replicas[1].staleness == 2
    req = request_for_rid(rs, 1)  # affine to the lagging replica
    resp = rs.answer(req)  # no max_stale anywhere -> fresh reads only
    assert resp.replica_id == 0
    assert resp.staleness == 0
    assert rs.stale_skips >= 1


def test_stale_served_with_shrunk_region(points):
    rs = make_set(points, replicas=2, lag=10)
    rs.insert_object(9001, 0.91, 0.91)
    req = request_for_rid(rs, 1)
    resp = rs.answer(req.__class__(req.location, k=req.k, max_stale=5))
    if resp.replica_id == 1:
        assert resp.staleness == 1
        assert resp.valid_for_epoch == rs.epoch
        assert resp.region.contains(req.location)
        assert rs.stale_served == 1


def test_unserveable_stale_fails_over_to_primary(points):
    rs = make_set(points, replicas=2, lag=10)
    # Insert right where we will query: the lagging replica cannot
    # serve any range answer around it, whatever the shrink.
    rs.insert_object(9001, 0.505, 0.505)
    req = RangeRequest((0.5, 0.5), 0.1, max_stale=5)
    target = affine_rid(rs, req)
    resp = rs.answer(req)
    assert resp.replica_id == 0
    assert resp.staleness == 0
    assert 9001 in {e.oid for e in resp.result}
    if target == 1:
        assert rs.unserveable_stale == 1


def test_window_query_replicated(points):
    rs = make_set(points, replicas=3)
    resp = rs.answer(WindowRequest((0.5, 0.5), 0.2, 0.2))
    assert resp.region.contains((0.5, 0.5))


# ----------------------------------------------------------------------
# replication mechanics
# ----------------------------------------------------------------------
def test_synchronous_replication_by_default(points):
    rs = make_set(points, replicas=3, lag=0)
    rs.insert_object(9001, 0.2, 0.2)
    assert [r.staleness for r in rs.replicas] == [0, 0, 0]
    assert len({r.server.epoch for r in rs.replicas}) == 1
    assert len({r.server.num_points for r in rs.replicas}) == 1


def test_sync_drains_backlogs(points):
    rs = make_set(points, replicas=2, lag=10)
    rs.insert_object(9001, 0.2, 0.2)
    assert rs.delete_object(9001, 0.2, 0.2) is True
    assert rs.replicas[1].staleness == 2
    rs.sync()
    assert rs.replicas[1].staleness == 0
    assert rs.replicas[1].server.epoch == rs.epoch


def test_noop_delete_is_not_replicated(points):
    rs = make_set(points, replicas=2, lag=10)
    assert rs.delete_object(424242, 0.5, 0.5) is False
    assert rs.replicas[1].staleness == 0  # epoch alignment preserved


def test_killed_replica_accrues_backlog_and_revive_catches_up(points):
    rs = make_set(points, replicas=2, lag=0)
    rs.kill(1)
    rs.insert_object(9001, 0.2, 0.2)
    assert rs.replicas[1].staleness == 1  # not applied while dead
    rs.revive(1)
    assert rs.replicas[1].staleness == 0
    assert rs.replicas[1].server.epoch == rs.epoch


# ----------------------------------------------------------------------
# QueryService composition
# ----------------------------------------------------------------------
def test_query_service_over_replica_set(points):
    rs = make_set(points)
    service = QueryService(rs)
    resp = service.answer(KNNRequest((0.5, 0.5), k=2))
    assert isinstance(resp, ServedResponse)
    snap = service.stats_snapshot()
    assert len(snap["replica_set"]["replicas"]) == 3
    counters = service.metrics.snapshot()["counters"]
    rid = resp.replica_id
    assert counters[f'service.replica.queries{{replica="{rid}"}}'] == 1
    service.close()
    service.close()  # idempotent through every layer


def test_query_service_failover_metrics(points):
    rs = make_set(points)
    service = QueryService(rs)
    req = KNNRequest((0.3, 0.7), k=2)
    rs.kill(affine_rid(rs, req))
    service.answer(req)
    counters = service.metrics.snapshot()["counters"]
    assert counters["service.replica.failovers"] == 1


def test_replica_set_context_manager(points):
    with make_set(points, replicas=2) as rs:
        rs.answer(KNNRequest((0.5, 0.5)))
    rs.close()  # second close after __exit__ is a no-op


def test_no_replica_available_error_is_transient():
    assert NoReplicaAvailableError("x").transient is True
