"""Unit tests for the continuous-query tier (repro.service.continuous).

The deterministic half of the continuous-query battery (the randomised
mutation oracle lives in tests/service/test_incremental_oracle.py):
patch mechanics per query kind, the anchor/horizon margin accounting,
the margin-exhaustion escape hatch, broken-subscription semantics and
— the contract that makes server push deployable at all — bounded
backpressure: a slow subscriber's queue never grows past its capacity,
overflow coalesces latest-wins, and the final queued state always
equals a fresh recompute.
"""

from __future__ import annotations

import math
import random

import pytest

from repro import (
    ContinuousConfig,
    KNNRequest,
    RangeRequest,
    WindowRequest,
    build_service,
)
from repro.geometry import Rect
from repro.service.continuous import INVALIDATE_BYTES

from tests.conftest import brute_window

EPS = 1e-9


def _dataset(seed: int = 11, n: int = 120):
    rnd = random.Random(seed)
    return [(rnd.random(), rnd.random()) for _ in range(n)]


def _live(points):
    """oid -> point for the brute-force oracles (mutable under churn)."""
    return {i: p for i, p in enumerate(points)}


def _brute_knn_ok(live, q, answer_ids, k):
    """Tie-aware: served set is a valid top-k of the live objects."""
    if len(answer_ids) != min(k, len(live)):
        return False
    if not answer_ids:
        return True
    farthest = max(math.dist(live[i], q) for i in answer_ids)
    nearest_out = min((math.dist(p, q) for i, p in live.items()
                       if i not in answer_ids), default=math.inf)
    return farthest <= nearest_out + EPS


def _window_rect(focus, w, h):
    return Rect(focus[0] - w / 2, focus[1] - h / 2,
                focus[0] + w / 2, focus[1] + h / 2)


class TestSubscribeBasics:
    def test_knn_subscription_answers_the_request(self):
        points = _dataset()
        service = build_service(points)
        sub = service.subscribe(KNNRequest((0.5, 0.5), k=3))
        assert sub.response is not None
        assert _brute_knn_ok(_live(points), (0.5, 0.5),
                             {e.oid for e in sub.response.result}, 3)
        assert sub.response.detail.origin == "subscribe"
        assert sub.pending == 0
        service.close()

    def test_window_and_range_subscriptions_answer(self):
        points = _dataset()
        service = build_service(points)
        w = service.subscribe(WindowRequest((0.5, 0.5), 0.2, 0.2))
        r = service.subscribe(RangeRequest((0.4, 0.4), 0.15))
        assert sorted(e.oid for e in w.response.result) == brute_window(
            points, _window_rect((0.5, 0.5), 0.2, 0.2))
        assert sorted(e.oid for e in r.response.result) == sorted(
            i for i, p in enumerate(points)
            if math.dist(p, (0.4, 0.4)) <= 0.15)
        assert len(service.hub) == 2
        service.close()

    def test_close_unregisters_and_marks_closed(self):
        service = build_service(_dataset())
        sub = service.subscribe(KNNRequest((0.5, 0.5), k=2))
        sub.close()
        assert sub.closed
        assert len(service.hub) == 0
        with pytest.raises(RuntimeError):
            sub.move((0.6, 0.6))
        service.close()

    def test_snapshot_surfaces_in_service_stats(self):
        service = build_service(_dataset())
        assert service.stats_snapshot()["continuous"] is None
        service.subscribe(KNNRequest((0.5, 0.5), k=2))
        snap = service.stats_snapshot()["continuous"]
        assert snap["subscriptions"] == 1
        assert snap["broken"] == 0
        service.close()


class TestKnnPatches:
    def test_insert_inside_horizon_is_patched(self):
        points = _dataset()
        live = _live(points)
        service = build_service(points)
        sub = service.subscribe(KNNRequest((0.5, 0.5), k=3))
        service.insert_object(len(points), 0.5001, 0.5001)
        live[len(points)] = (0.5001, 0.5001)
        updates = sub.drain()
        assert [u.kind for u in updates] == ["patch"]
        assert updates[0].reason == "insert"
        assert _brute_knn_ok(live, (0.5, 0.5),
                             {e.oid for e in updates[0].response.result}, 3)
        # The patch was repaired from cached state: the update models
        # only the delta on the wire (one added point + the region).
        assert updates[0].transfer_bytes < sub.response.transfer_bytes()
        service.close()

    def test_insert_beyond_horizon_is_skipped(self):
        points = [(0.5 + 0.01 * i, 0.5) for i in range(30)]
        service = build_service(points)
        sub = service.subscribe(KNNRequest((0.5, 0.5), k=2))
        horizon = sub._state.horizon
        assert math.isfinite(horizon)
        service.insert_object(len(points), 0.95, 0.95)  # far outside
        assert math.dist((0.95, 0.95), (0.5, 0.5)) > horizon
        assert sub.pending == 0  # invariant untouched: no push needed
        service.close()

    def test_delete_of_nonmember_candidate_is_silent_but_tracked(self):
        points = [(0.5 + 0.01 * i, 0.5) for i in range(30)]
        service = build_service(points)
        sub = service.subscribe(KNNRequest((0.5, 0.5), k=2))
        # oid 5 is a margin candidate (rank 6) but not a member.
        assert 5 in sub._state.candidates
        service.delete_object(5, points[5][0], points[5][1])
        assert sub.pending == 0  # shipped answer still sound
        assert 5 not in sub._state.candidates  # but the state moved on
        service.close()

    def test_delete_of_member_is_patched(self):
        points = _dataset()
        live = _live(points)
        service = build_service(points)
        sub = service.subscribe(KNNRequest((0.5, 0.5), k=3))
        victim = sub.response.result[0]
        service.delete_object(victim.oid, victim.point[0], victim.point[1])
        del live[victim.oid]
        updates = sub.drain()
        assert [u.kind for u in updates] == ["patch"]
        served = {e.oid for e in updates[0].response.result}
        assert victim.oid not in served
        assert _brute_knn_ok(live, (0.5, 0.5), served, 3)
        service.close()

    def test_margin_exhaustion_invalidates_then_move_recovers(self):
        points = _dataset()
        live = _live(points)
        service = build_service(points, continuous=ContinuousConfig(margin=2))
        sub = service.subscribe(KNNRequest((0.5, 0.5), k=3))
        # Delete every candidate: the margin cannot absorb that.
        for entry in list(sub._state.candidates.values()):
            service.delete_object(entry.oid, entry.point[0], entry.point[1])
            del live[entry.oid]
            if sub._needs_refresh:
                break
        updates = sub.drain()
        assert updates, "exhausting the margin must push something"
        assert updates[-1].kind == "invalidate"
        assert updates[-1].reason in ("margin_exhausted", "stale")
        # Further mutations keep the client informed, never silent.
        service.insert_object(len(points) + 7, 0.5, 0.5)
        live[len(points) + 7] = (0.5, 0.5)
        assert sub.poll().reason == "stale"
        # move() takes the escape hatch and re-arms the subscription.
        response = sub.move((0.5, 0.5))
        assert sub.moves_refetched >= 1
        assert _brute_knn_ok(live, (0.5, 0.5),
                             {e.oid for e in response.result}, 3)
        assert not sub._needs_refresh
        service.close()

    def test_move_within_margin_costs_zero_node_accesses(self):
        points = _dataset(n=400)
        service = build_service(points, continuous=ContinuousConfig(margin=16))
        sub = service.subscribe(KNNRequest((0.5, 0.5), k=3))
        before = service.stats_snapshot()["disk"]["total_node_accesses"]
        response = sub.move((0.501, 0.501))  # a tiny step: margin holds
        assert sub.moves_patched == 1
        assert sub.moves_refetched == 0
        after = service.stats_snapshot()["disk"]["total_node_accesses"]
        assert after == before, "a patched move must not touch the tree"
        assert _brute_knn_ok(_live(points), (0.501, 0.501),
                             {e.oid for e in response.result}, 3)
        service.close()


class TestWindowAndRangePatches:
    def test_window_insert_inside_joins_result(self):
        points = _dataset()
        live = _live(points)
        service = build_service(points)
        sub = service.subscribe(WindowRequest((0.5, 0.5), 0.2, 0.2))
        service.insert_object(len(points), 0.52, 0.48)
        live[len(points)] = (0.52, 0.48)
        updates = sub.drain()
        assert [u.kind for u in updates] == ["patch"]
        served = sorted(e.oid for e in updates[0].response.result)
        assert served == brute_window(list(live.values()), _window_rect(
            (0.5, 0.5), 0.2, 0.2)) or served == sorted(
            i for i, p in live.items()
            if _window_rect((0.5, 0.5), 0.2, 0.2).contains_point(p))
        assert len(points) in set(served)
        service.close()

    def test_window_member_delete_keeps_region(self):
        points = _dataset()
        service = build_service(points)
        sub = service.subscribe(WindowRequest((0.5, 0.5), 0.2, 0.2))
        region_before = sub.response.region
        victim = sub.response.result[0]
        service.delete_object(victim.oid, victim.point[0], victim.point[1])
        update = sub.poll()
        assert update.kind == "patch"
        assert victim.oid not in {e.oid for e in update.response.result}
        # A member was inside the window for every focus in the region:
        # the delete cannot change the answer anywhere in it.
        assert update.response.region.rect == region_before.rect
        service.close()

    def test_range_insert_outside_only_caps_validity(self):
        points = _dataset()
        service = build_service(points)
        sub = service.subscribe(RangeRequest((0.5, 0.5), 0.1))
        ids_before = {e.oid for e in sub.response.result}
        # Insert close enough to threaten the validity radius, but
        # outside the query circle: membership must not change.
        service.insert_object(len(points), 0.5, 0.5 + 0.1 + 1e-4)
        updates = sub.drain()
        if updates:  # a patch only when the validity cap actually bites
            assert {e.oid for e in updates[-1].response.result} == ids_before
        assert {e.oid for e in sub.response.result} == ids_before
        service.close()

    def test_range_insert_inside_joins_result(self):
        points = _dataset()
        service = build_service(points)
        sub = service.subscribe(RangeRequest((0.5, 0.5), 0.12))
        service.insert_object(len(points), 0.51, 0.5)
        update = sub.poll()
        assert update.kind == "patch"
        assert len(points) in {e.oid for e in update.response.result}
        service.close()


class TestBackpressure:
    """Satellite contract: deterministic slow-subscriber semantics."""

    def test_slow_subscriber_queue_is_bounded_and_coalesces(self):
        points = _dataset(n=60)
        live = _live(points)
        capacity = 3
        service = build_service(points, continuous=ContinuousConfig(
            margin=8, queue_capacity=capacity))
        sub = service.subscribe(KNNRequest((0.5, 0.5), k=3))
        # A burst of overlapping mutations with the subscriber asleep:
        # every insert lands next to the anchor, so every one patches.
        rnd = random.Random(7)
        burst = 25
        for i in range(burst):
            oid = len(points) + i
            x = 0.5 + rnd.uniform(-0.02, 0.02)
            y = 0.5 + rnd.uniform(-0.02, 0.02)
            service.insert_object(oid, x, y)
            live[oid] = (x, y)
            assert sub.pending <= capacity  # never unbounded, ever
        assert sub.pushes == burst
        assert sub.coalesced == burst - capacity
        updates = sub.drain()
        assert len(updates) == capacity
        # Oldest updates survive untouched; the tail absorbed the burst.
        assert updates[-1].coalesced == burst - capacity
        # Latest wins and nothing final was lost: the last queued update
        # carries the full current state, equal to a fresh recompute.
        last = updates[-1]
        assert last.kind == "patch"
        assert last.response is sub.response
        served = {e.oid for e in last.response.result}
        assert _brute_knn_ok(live, (0.5, 0.5), served, 3)
        fresh = service.answer(KNNRequest((0.5, 0.5), k=3))
        assert served == {e.oid for e in fresh.result}
        service.close()

    def test_coalescing_replaces_tail_not_head(self):
        points = _dataset(n=40)
        service = build_service(points, continuous=ContinuousConfig(
            margin=8, queue_capacity=2))
        sub = service.subscribe(KNNRequest((0.5, 0.5), k=2))
        seqs = []
        for i in range(6):
            service.insert_object(len(points) + i, 0.5 + 1e-4 * (i + 1), 0.5)
            seqs.append(sub._queue[0].seq if sub._queue else None)
        # The head seq froze after the queue filled: old updates are
        # delivered in order, only the newest slot churns.
        assert seqs[1:] == [seqs[1]] * 5
        updates = sub.drain()
        assert [u.seq for u in updates] == sorted(u.seq for u in updates)
        assert updates[-1].seq == sub.pushes  # the newest push survived
        service.close()

    def test_invalidate_pushes_coalesce_too(self):
        points = _dataset(n=50)
        live = _live(points)
        service = build_service(points, continuous=ContinuousConfig(
            margin=1, queue_capacity=2))
        sub = service.subscribe(KNNRequest((0.5, 0.5), k=3))
        for entry in list(sub._state.candidates.values()):
            service.delete_object(entry.oid, entry.point[0], entry.point[1])
            del live[entry.oid]
        for i in range(5):  # stale reminders while exhausted
            service.insert_object(len(points) + i, 0.5, 0.5)
            live[len(points) + i] = (0.5, 0.5)
            assert sub.pending <= 2
        updates = sub.drain()
        assert updates[-1].kind == "invalidate"
        assert updates[-1].transfer_bytes == INVALIDATE_BYTES
        service.close()


class TestBrokenSubscriptions:
    def test_patch_failure_breaks_loudly_with_final_invalidate(self):
        points = _dataset()
        service = build_service(points)
        sub = service.subscribe(KNNRequest((0.5, 0.5), k=3))
        sub._state.candidates = None  # simulate corrupted server state
        service.insert_object(len(points), 0.5, 0.5)  # patch will raise
        assert sub.broken
        assert "TypeError" in sub.broken_reason
        updates = sub.drain()
        assert updates[-1].kind == "invalidate"
        assert updates[-1].reason == "broken"
        # Broken subscriptions are inert: no further pushes, move fails.
        service.insert_object(len(points) + 1, 0.5, 0.5)
        assert sub.pending == 0
        with pytest.raises(RuntimeError, match="broken"):
            sub.move((0.5, 0.5))
        snap = service.stats_snapshot()["continuous"]
        assert snap["broken"] == 1
        service.close()

    def test_one_broken_subscription_does_not_poison_neighbours(self):
        points = _dataset()
        live = _live(points)
        service = build_service(points)
        bad = service.subscribe(KNNRequest((0.5, 0.5), k=3))
        good = service.subscribe(KNNRequest((0.5, 0.5), k=3))
        bad._state.candidates = None
        service.insert_object(len(points), 0.5001, 0.5)
        live[len(points)] = (0.5001, 0.5)
        assert bad.broken and not good.broken
        assert _brute_knn_ok(live, (0.5, 0.5),
                             {e.oid for e in good.response.result}, 3)
        service.close()


class TestReplicaSetSubscriptions:
    def test_replicated_tier_pushes_patches(self):
        points = _dataset()
        live = _live(points)
        service = build_service(points, replicas=3)
        replica_set = service.server
        sub = replica_set.subscribe(KNNRequest((0.5, 0.5), k=3))
        replica_set.insert_object(len(points), 0.5001, 0.5001)
        live[len(points)] = (0.5001, 0.5001)
        updates = sub.drain()
        assert [u.kind for u in updates] == ["patch"]
        assert _brute_knn_ok(live, (0.5, 0.5),
                             {e.oid for e in updates[0].response.result}, 3)
        assert replica_set.snapshot()["continuous"]["subscriptions"] == 1
        service.close()
