"""Sharded scatter-gather: result equivalence and merged-region soundness.

A :class:`ShardedServer` must be observationally equivalent to one
:class:`LocationServer` over the same points — same result sets — and
its *merged* validity regions must honour the paper's contract: the
region it ships is conservative, so the brute-force answer is unchanged
at any probe inside it.  The latter is the part sharding can silently
break (a pruned shard's nearest point creeping below the k-th distance,
a window validity rectangle leaking into an unqueried shard), so the
probes here are the real test.
"""

from __future__ import annotations

import math
import random

import pytest

from hypothesis import given, settings, strategies as st

from repro import ExecutionConfig, KNNRequest, RangeRequest, WindowRequest
from repro.core.api import QueryBudget
from repro.core.server import LocationServer
from repro.geometry import Rect
from repro.service.shard import (
    ShardedKNNDetail,
    ShardedRangeDetail,
    ShardedServer,
    ShardedWindowDetail,
)

from tests.conftest import UNIT, brute_window
from tests.core.test_validity_oracle import EPS, _knn_set_unchanged

seeds = st.integers(min_value=0, max_value=2**31 - 1)
ks = st.integers(min_value=1, max_value=6)
grids = st.integers(min_value=2, max_value=4)


def _instance(seed: int, n: int = 160):
    rnd = random.Random(seed)
    points = [(rnd.random(), rnd.random()) for _ in range(n)]
    query = (rnd.random(), rnd.random())
    return points, query, rnd


def _pair(points, grid):
    return (LocationServer.from_points(points, universe=UNIT),
            ShardedServer.from_points(
                points, grid=grid, universe=UNIT,
                execution=ExecutionConfig(workers=1)))


class TestEquivalence:
    @given(seeds, ks, grids)
    @settings(deadline=None, max_examples=25)
    def test_knn_matches_single_tree(self, seed, k, grid):
        points, query, _ = _instance(seed)
        single, sharded = _pair(points, grid)
        merged = sharded.answer(KNNRequest(query, k=k))
        assert len(merged.neighbors) == k
        # Tie-aware: any correct kNN set is acceptable.
        assert _knn_set_unchanged(points, query,
                                  {e.oid for e in merged.neighbors})
        dists = [math.dist(points[e.oid], query) for e in merged.neighbors]
        assert dists == sorted(dists)
        reference = single.answer(KNNRequest(query, k=k))
        assert math.isclose(
            dists[-1], math.dist(points[reference.neighbors[-1].oid], query),
            abs_tol=EPS)

    @given(seeds, grids,
           st.floats(min_value=0.05, max_value=0.4),
           st.floats(min_value=0.05, max_value=0.4))
    @settings(deadline=None, max_examples=25)
    def test_window_matches_brute_force(self, seed, grid, w, h):
        points, focus, _ = _instance(seed)
        _, sharded = _pair(points, grid)
        response = sharded.answer(WindowRequest(focus, w, h))
        window = Rect(focus[0] - w / 2.0, focus[1] - h / 2.0,
                      focus[0] + w / 2.0, focus[1] + h / 2.0)
        assert sorted(e.oid for e in response.result) == \
            brute_window(points, window)

    @given(seeds, grids, st.floats(min_value=0.02, max_value=0.3))
    @settings(deadline=None, max_examples=25)
    def test_range_matches_brute_force(self, seed, grid, radius):
        points, focus, _ = _instance(seed)
        _, sharded = _pair(points, grid)
        response = sharded.answer(RangeRequest(focus, radius))
        served = {e.oid for e in response.result}
        on_rim = {i for i, p in enumerate(points)
                  if abs(math.dist(p, focus) - radius) <= EPS}
        inside = {i for i, p in enumerate(points)
                  if math.dist(p, focus) <= radius - EPS}
        assert inside - served <= on_rim
        assert served - inside <= on_rim


class TestMergedRegionSoundness:
    @given(seeds, ks, grids)
    @settings(deadline=None, max_examples=20)
    def test_knn_region_probes(self, seed, k, grid):
        points, query, rnd = _instance(seed)
        _, sharded = _pair(points, grid)
        response = sharded.answer(KNNRequest(query, k=k))
        region = response.region
        assert region.contains(query, eps=EPS)
        served = {e.oid for e in response.neighbors}
        mbr = region.mbr() or UNIT
        for _ in range(30):
            probe = (rnd.uniform(mbr.xmin, mbr.xmax),
                     rnd.uniform(mbr.ymin, mbr.ymax))
            if not region.contains(probe, eps=-EPS):
                continue
            assert _knn_set_unchanged(points, probe, served), (
                f"kNN set changed inside the merged region at {probe} "
                f"(seed={seed}, k={k}, grid={grid})")

    @given(seeds, grids,
           st.floats(min_value=0.05, max_value=0.35),
           st.floats(min_value=0.05, max_value=0.35))
    @settings(deadline=None, max_examples=20)
    def test_window_region_probes(self, seed, grid, w, h):
        points, focus, rnd = _instance(seed)
        _, sharded = _pair(points, grid)
        response = sharded.answer(WindowRequest(focus, w, h))
        rect = response.detail.conservative_region
        cached = sorted(e.oid for e in response.result)
        assert rect.contains_point(focus)
        for _ in range(20):
            probe = (rnd.uniform(rect.xmin, rect.xmax),
                     rnd.uniform(rect.ymin, rect.ymax))
            if (min(probe[0] - rect.xmin, rect.xmax - probe[0]) < EPS
                    or min(probe[1] - rect.ymin, rect.ymax - probe[1]) < EPS):
                continue
            moved = Rect(probe[0] - w / 2.0, probe[1] - h / 2.0,
                         probe[0] + w / 2.0, probe[1] + h / 2.0)
            assert brute_window(points, moved) == cached, (
                f"window result changed inside the merged rect at {probe} "
                f"(seed={seed}, grid={grid})")

    @given(seeds, grids, st.floats(min_value=0.02, max_value=0.25))
    @settings(deadline=None, max_examples=20)
    def test_range_validity_disk_probes(self, seed, grid, radius):
        points, focus, rnd = _instance(seed)
        _, sharded = _pair(points, grid)
        response = sharded.answer(RangeRequest(focus, radius))
        cached = sorted(e.oid for e in response.result)
        rho = response.detail.validity_radius
        assert rho >= 0.0
        for _ in range(20):
            angle = rnd.uniform(0.0, 2.0 * math.pi)
            r = rho * math.sqrt(rnd.random()) * 0.99
            probe = (focus[0] + r * math.cos(angle),
                     focus[1] + r * math.sin(angle))
            inside = sorted(i for i, p in enumerate(points)
                            if math.dist(p, probe) <= radius - EPS)
            on_rim = {i for i, p in enumerate(points)
                      if abs(math.dist(p, probe) - radius) <= EPS}
            assert set(inside) - set(cached) <= on_rim, (
                f"range result changed inside the validity disk at {probe} "
                f"(seed={seed}, grid={grid})")


class TestScatterGatherMechanics:
    def _sharded(self, seed=7, n=300, grid=3):
        points, query, rnd = _instance(seed, n=n)
        return points, query, rnd, ShardedServer.from_points(
            points, grid=grid, universe=UNIT,
            execution=ExecutionConfig(workers=1))

    def test_knn_accounting_and_pruning(self):
        points, query, _, sharded = self._sharded()
        detail = sharded.answer(KNNRequest(query, k=3)).detail
        assert isinstance(detail, ShardedKNNDetail)
        assert detail.shards_total == len(sharded.shards)
        assert (detail.shards_queried + detail.shards_pruned
                == detail.shards_total)
        assert detail.shards_queried >= 1
        assert set(detail.per_shard_node_accesses) <= {
            s.sid for s in sharded.shards}

    def test_small_window_prunes_far_shards(self):
        points, _, _, sharded = self._sharded(n=400, grid=3)
        detail = sharded.answer(
            WindowRequest((0.1, 0.1), 0.05, 0.05)).detail
        assert detail.shards_queried < detail.shards_total
        assert (detail.shards_queried + detail.shards_pruned
                == detail.shards_total)

    def test_knn_delta_against_full(self):
        points, query, _, sharded = self._sharded()
        full = sharded.answer(KNNRequest(query, k=4))
        ids = frozenset(e.oid for e in full.neighbors)
        stale = frozenset(list(ids)[:2] + [9999])
        delta = sharded.answer(
            KNNRequest(query, k=4, previous_ids=stale))
        assert frozenset(e.oid for e in delta.full.neighbors) == ids
        assert set(delta.removed_ids) == {9999}
        assert {e.oid for e in delta.added} == ids - stale

    def test_budget_degrades_but_stays_exact(self):
        points, query, _, sharded = self._sharded()
        response = sharded.answer(
            KNNRequest(query, k=2,
                       budget=QueryBudget(max_node_accesses=2)))
        assert response.detail.degraded
        assert _knn_set_unchanged(points, query,
                                  {e.oid for e in response.neighbors})

    def test_insert_creates_shard_and_is_queryable(self):
        points, _, _, sharded = self._sharded(n=20, grid=4)
        before = len(sharded.shards)
        epoch = sharded.epoch
        oid = 777
        sharded.insert_object(oid, 0.015, 0.015)
        assert sharded.epoch == epoch + 1
        assert sharded.num_points == len(points) + 1
        assert len(sharded.shards) >= before
        nearest = sharded.answer(KNNRequest((0.01, 0.01), k=1))
        assert nearest.neighbors[0].oid == oid
        assert sharded.delete_object(oid, 0.015, 0.015)
        assert sharded.num_points == len(points)

    def test_global_universe_shared_by_all_shards(self):
        _, _, _, sharded = self._sharded()
        assert all(s.server.universe == UNIT for s in sharded.shards)

    def test_typed_details_expose_attributes(self):
        points, query, _, sharded = self._sharded()
        knn = sharded.answer(KNNRequest(query, k=2)).detail
        window = sharded.answer(WindowRequest(query, 0.2, 0.2)).detail
        rng = sharded.answer(RangeRequest(query, 0.1)).detail
        assert isinstance(knn, ShardedKNNDetail)
        assert isinstance(window, ShardedWindowDetail)
        assert isinstance(rng, ShardedRangeDetail)
        for detail in (knn, window, rng):
            assert detail.shards_total == len(sharded.shards)
            assert isinstance(detail.per_shard_node_accesses, dict)
            with pytest.raises(AttributeError):
                detail.no_such_key

    def test_parallel_pool_matches_inline_execution(self):
        points, query, _, _ = self._sharded()
        inline = ShardedServer.from_points(
            points, grid=3, universe=UNIT,
            execution=ExecutionConfig(workers=1))
        pooled = ShardedServer.from_points(
            points, grid=3, universe=UNIT,
            execution=ExecutionConfig(workers=4))
        try:
            for k in (1, 3, 5):
                a = inline.answer(KNNRequest(query, k=k))
                b = pooled.answer(KNNRequest(query, k=k))
                assert [e.oid for e in a.neighbors] == \
                    [e.oid for e in b.neighbors]
            wa = inline.answer(WindowRequest(query, 0.3, 0.3))
            wb = pooled.answer(WindowRequest(query, 0.3, 0.3))
            assert [e.oid for e in wa.result] == [e.oid for e in wb.result]
        finally:
            pooled.close()
