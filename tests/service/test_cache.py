"""The server-side validity cache: correctness oracle and bookkeeping.

The cache's contract is the paper's contract, applied across clients: a
cache-served response must equal the brute-force answer *at the probe
point* (not at the original query point).  The Hypothesis properties
drive random probes through a cached service and check exactly that,
reusing the tie-aware oracles of tests/core/test_validity_oracle.py.
The unit tests pin the mechanics: LRU eviction, mutation invalidation,
epoch staleness, and what is never admitted.
"""

from __future__ import annotations

import math
import random

from hypothesis import given, settings, strategies as st

from repro import KNNRequest, RangeRequest, WindowRequest, build_service
from repro.core.server import LocationServer
from repro.geometry import Rect
from repro.index import bulk_load_str
from repro.service import CacheConfig, ValidityCache

from tests.conftest import UNIT, brute_window
from tests.core.test_validity_oracle import EPS, _knn_set_unchanged

seeds = st.integers(min_value=0, max_value=2**31 - 1)
ks = st.integers(min_value=1, max_value=5)


def _instance(seed: int, n: int = 150):
    rnd = random.Random(seed)
    points = [(rnd.random(), rnd.random()) for _ in range(n)]
    query = (0.2 + 0.6 * rnd.random(), 0.2 + 0.6 * rnd.random())
    return points, query, rnd


def _probes_near(query, rnd, num=20, sigma=0.02):
    for _ in range(num):
        yield (min(1.0, max(0.0, query[0] + rnd.gauss(0.0, sigma))),
               min(1.0, max(0.0, query[1] + rnd.gauss(0.0, sigma))))


class TestCacheOracle:
    @given(seeds, ks)
    @settings(deadline=None, max_examples=20)
    def test_cache_served_knn_equals_brute_force_at_probe(self, seed, k):
        points, query, rnd = _instance(seed)
        service = build_service(points, cache=CacheConfig(capacity=64))
        service.answer(KNNRequest(query, k=k))
        hits = 0
        for probe in _probes_near(query, rnd):
            before = service.cache.hits
            response = service.answer(KNNRequest(probe, k=k))
            if service.cache.hits == before:
                continue  # miss: answered by the index, not under test
            hits += 1
            served = {e.oid for e in response.neighbors}
            assert _knn_set_unchanged(points, probe, served), (
                f"cache served a wrong kNN set at {probe} (seed={seed}, "
                f"k={k})")
            # Hit responses are re-ranked by distance at the probe point.
            dists = [math.dist(points[e.oid], probe)
                     for e in response.neighbors]
            assert dists == sorted(dists)
        assert service.cache.hits == hits

    @given(seeds,
           st.floats(min_value=0.05, max_value=0.3),
           st.floats(min_value=0.05, max_value=0.3))
    @settings(deadline=None, max_examples=20)
    def test_cache_served_window_equals_brute_force_at_probe(
            self, seed, w, h):
        points, focus, rnd = _instance(seed)
        service = build_service(points, cache=CacheConfig(capacity=64))
        service.answer(WindowRequest(focus, w, h))
        for probe in _probes_near(focus, rnd):
            before = service.cache.hits
            response = service.answer(WindowRequest(probe, w, h))
            if service.cache.hits == before:
                continue
            moved = Rect(probe[0] - w / 2.0, probe[1] - h / 2.0,
                         probe[0] + w / 2.0, probe[1] + h / 2.0)
            assert sorted(e.oid for e in response.result) == \
                brute_window(points, moved), (
                    f"cache served a wrong window result at {probe} "
                    f"(seed={seed}, w={w}, h={h})")

    @given(seeds, st.floats(min_value=0.05, max_value=0.25))
    @settings(deadline=None, max_examples=20)
    def test_cache_served_range_equals_brute_force_at_probe(
            self, seed, radius):
        points, focus, rnd = _instance(seed)
        service = build_service(points, cache=CacheConfig(capacity=64))
        service.answer(RangeRequest(focus, radius))
        for probe in _probes_near(focus, rnd, sigma=0.01):
            before = service.cache.hits
            response = service.answer(RangeRequest(probe, radius))
            if service.cache.hits == before:
                continue
            served = sorted(e.oid for e in response.result)
            inside = sorted(
                i for i, p in enumerate(points)
                if math.dist(p, probe) <= radius - EPS)
            on_rim = {i for i, p in enumerate(points)
                      if abs(math.dist(p, probe) - radius) <= EPS}
            assert set(inside) - set(served) <= on_rim
            assert set(served) - set(inside) <= on_rim

    @given(seeds, ks)
    @settings(deadline=None, max_examples=15)
    def test_hit_costs_zero_node_accesses(self, seed, k):
        points, query, _ = _instance(seed)
        service = build_service(points, cache=CacheConfig(capacity=64))
        service.answer(KNNRequest(query, k=k))
        before = service.server.io_stats.total_node_accesses
        response = service.answer(KNNRequest(query, k=k))
        assert service.cache.hits == 1
        assert service.server.io_stats.total_node_accesses == before
        assert {e.oid for e in response.neighbors}


class TestCacheMechanics:
    def _server(self, n=200, seed=9):
        rnd = random.Random(seed)
        points = [(rnd.random(), rnd.random()) for _ in range(n)]
        tree = bulk_load_str(points, capacity=8)
        return points, LocationServer(tree, universe=UNIT)

    def test_lru_eviction_order(self):
        _, server = self._server()
        cache = ValidityCache(UNIT, CacheConfig(capacity=2))
        q = (0.5, 0.5)
        requests = [KNNRequest(q, k=k) for k in (1, 2, 3)]
        for request in requests:
            cache.admit(request, server.answer(request), server.epoch)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.probe(requests[0], server.epoch) is None  # evicted
        assert cache.probe(requests[2], server.epoch) is not None

    def test_probe_refreshes_lru_position(self):
        _, server = self._server()
        cache = ValidityCache(UNIT, CacheConfig(capacity=2))
        q = (0.5, 0.5)
        requests = [KNNRequest(q, k=k) for k in (1, 2, 3)]
        for request in requests[:2]:
            cache.admit(request, server.answer(request), server.epoch)
        assert cache.probe(requests[0], server.epoch) is not None  # touch
        cache.admit(requests[2], server.answer(requests[2]), server.epoch)
        # k=2 was least recently used, so it (not the touched k=1) went.
        assert cache.probe(requests[0], server.epoch) is not None
        assert cache.probe(requests[1], server.epoch) is None

    def test_mutation_invalidates_through_the_service(self):
        points, _, _ = _instance(3)
        service = build_service(points, cache=CacheConfig(capacity=64))
        request = KNNRequest((0.5, 0.5), k=2)
        service.answer(request)
        assert len(service.cache) == 1
        service.insert_object(len(points), 0.5001, 0.5001)
        assert len(service.cache) == 0
        assert service.cache.invalidations == 1
        response = service.answer(request)  # recomputed, not stale
        assert len(points) in {e.oid for e in response.neighbors}

    def test_stale_epoch_entries_dropped_lazily(self):
        _, server = self._server()
        cache = ValidityCache(UNIT, CacheConfig(capacity=8))
        request = KNNRequest((0.5, 0.5), k=1)
        cache.admit(request, server.answer(request), epoch=0)
        assert cache.probe(request, epoch=1) is None
        assert len(cache) == 0  # dropped on sight, not just skipped

    def test_delta_and_degraded_are_not_admitted(self):
        from repro.core.api import QueryBudget
        _, server = self._server()
        cache = ValidityCache(UNIT, CacheConfig(capacity=8))
        delta = KNNRequest((0.5, 0.5), k=2, previous_ids=frozenset({1}))
        assert not cache.admit(delta, server.answer(delta), server.epoch)
        full = KNNRequest((0.5, 0.5), k=2)
        starved = server.answer(
            KNNRequest((0.5, 0.5), k=2,
                       budget=QueryBudget(max_node_accesses=1)))
        assert starved.detail.degraded
        assert not cache.admit(full, starved, server.epoch)
        assert len(cache) == 0

    def test_capacity_zero_disables_the_cache(self):
        _, server = self._server()
        cache = ValidityCache(UNIT, CacheConfig(capacity=0))
        request = KNNRequest((0.5, 0.5), k=1)
        assert not cache.admit(request, server.answer(request), server.epoch)
        assert cache.probe(request, server.epoch) is None
        assert cache.hits == 0 and cache.misses == 0

    def test_snapshot_is_json_serializable_and_consistent(self):
        import json
        _, server = self._server()
        cache = ValidityCache(UNIT, CacheConfig(capacity=4))
        request = KNNRequest((0.5, 0.5), k=1)
        cache.admit(request, server.answer(request), server.epoch)
        cache.probe(request, server.epoch)
        snap = json.loads(json.dumps(cache.snapshot()))
        assert snap["size"] == 1
        assert snap["hits"] == 1
        assert snap["hit_ratio"] == 1.0


class TestSurgicalInvalidation:
    """The mutation hook drops only entries the mutation can affect."""

    def _server(self, n=200, seed=9):
        rnd = random.Random(seed)
        points = [(rnd.random(), rnd.random()) for _ in range(n)]
        tree = bulk_load_str(points, capacity=8)
        return points, LocationServer(tree, universe=UNIT)

    def test_nonoverlapping_entries_survive_a_mutation(self):
        """Regression for the blunt invalidate-all hook: a mutation on
        the far side of the universe must not evict an unrelated entry,
        and the survivor keeps serving hits with zero node accesses."""
        points, _, _ = _instance(3)
        service = build_service(points, cache=CacheConfig(capacity=64))
        request = KNNRequest((0.2, 0.2), k=2)
        service.answer(request)
        assert len(service.cache) == 1
        service.insert_object(len(points), 0.9, 0.9)  # far away
        assert len(service.cache) == 1, "unrelated entry was evicted"
        assert service.cache.surgical_survivals == 1
        before = service.server.io_stats.total_node_accesses
        response = service.answer(request)  # same key, post-mutation epoch
        assert service.cache.hits == 1
        assert service.server.io_stats.total_node_accesses == before
        assert len(points) not in {e.oid for e in response.neighbors}

    def test_overlapping_insert_still_drops_the_entry(self):
        points, _, _ = _instance(3)
        service = build_service(points, cache=CacheConfig(capacity=64))
        request = KNNRequest((0.5, 0.5), k=2)
        service.answer(request)
        service.insert_object(len(points), 0.5001, 0.5001)
        assert len(service.cache) == 0
        assert service.cache.surgical_drops == 1
        response = service.answer(request)
        assert len(points) in {e.oid for e in response.neighbors}

    def test_delete_only_touches_entries_holding_the_victim(self):
        _, server = self._server()
        cache = ValidityCache(UNIT, CacheConfig(capacity=8))
        near = KNNRequest((0.3, 0.3), k=2)
        far = KNNRequest((0.8, 0.8), k=2)
        near_response = server.answer(near)
        cache.admit(near, near_response, server.epoch)
        cache.admit(far, server.answer(far), server.epoch)
        victim = near_response.result[0]
        server.delete_object(victim.oid, victim.point[0], victim.point[1])
        cache.invalidate_mutation("delete", victim.oid,
                                  victim.point[0], victim.point[1],
                                  epoch=server.epoch)
        assert cache.probe(near, server.epoch) is None  # held the victim
        assert cache.probe(far, server.epoch) is not None

    def test_window_survival_is_zone_overlap(self):
        _, server = self._server()
        cache = ValidityCache(UNIT, CacheConfig(capacity=8))
        request = WindowRequest((0.3, 0.3), 0.1, 0.1)
        cache.admit(request, server.answer(request), server.epoch)
        # The inserted object's zone misses the cached region's MBR.
        cache.invalidate_mutation("insert", 9_001, 0.9, 0.9,
                                  epoch=server.epoch + 1)
        assert cache.probe(request, server.epoch + 1) is not None
        # A zone overlapping the MBR could flip some focus' answer.
        cache.invalidate_mutation("insert", 9_002, 0.3, 0.3,
                                  epoch=server.epoch + 2)
        assert cache.probe(request, server.epoch + 2) is None

    def test_range_survival_is_mindist(self):
        _, server = self._server()
        cache = ValidityCache(UNIT, CacheConfig(capacity=8))
        request = RangeRequest((0.3, 0.3), 0.05)
        cache.admit(request, server.answer(request), server.epoch)
        cache.invalidate_mutation("insert", 9_001, 0.9, 0.9,
                                  epoch=server.epoch + 1)
        assert cache.probe(request, server.epoch + 1) is not None
        cache.invalidate_mutation("insert", 9_002, 0.31, 0.3,
                                  epoch=server.epoch + 2)
        assert cache.probe(request, server.epoch + 2) is None

    def test_surgical_false_restores_the_blunt_baseline(self):
        points, _, _ = _instance(3)
        service = build_service(
            points, cache=CacheConfig(capacity=64, surgical=False))
        service.answer(KNNRequest((0.2, 0.2), k=2))
        service.insert_object(len(points), 0.9, 0.9)  # unrelated, but...
        assert len(service.cache) == 0  # ...the baseline drops everything
        assert service.cache.surgical_drops == 0

    def test_lagging_entries_are_not_restamped(self):
        """Only entries current as of the pre-mutation epoch may be
        re-stamped; anything older is dropped, never resurrected."""
        _, server = self._server()
        cache = ValidityCache(UNIT, CacheConfig(capacity=8))
        request = KNNRequest((0.3, 0.3), k=2)
        cache.admit(request, server.answer(request), epoch=0)
        # Two mutations elapsed but only the second hook runs (the
        # first was lost, say, to a crashed replica): the entry cannot
        # prove survival across the unobserved epoch.
        cache.invalidate_mutation("insert", 9_001, 0.9, 0.9, epoch=2)
        assert cache.probe(request, epoch=2) is None

    def test_unknown_op_is_rejected(self):
        cache = ValidityCache(UNIT, CacheConfig(capacity=8))
        try:
            cache.invalidate_mutation("upsert", 1, 0.5, 0.5, epoch=1)
        except ValueError:
            pass
        else:
            raise AssertionError("unknown mutation op must raise")

    def test_snapshot_reports_surgical_counters(self):
        import json
        points, _, _ = _instance(3)
        service = build_service(points, cache=CacheConfig(capacity=64))
        service.answer(KNNRequest((0.2, 0.2), k=2))
        service.insert_object(len(points), 0.9, 0.9)
        snap = json.loads(json.dumps(service.cache.snapshot()))
        assert snap["surgical"] is True
        assert snap["surgical_survivals"] == 1
