"""Robustness tests: degenerate datasets through every algorithm.

Real deployments see duplicate coordinates (several POIs in one mall),
collinear points (highways), and co-circular grids.  Every major code
path must stay correct — not merely avoid crashing — on these inputs.
"""

import math
import random

import pytest

from repro.geometry import Rect, distance_sq
from repro.index import bulk_load_str, RStarTree
from repro.core import (
    compute_nn_validity,
    compute_range_validity,
    compute_window_validity,
)
from repro.queries import nearest_neighbors, tp_knn, tp_window
from tests.conftest import brute_knn_set, brute_window

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


DEGENERATE_DATASETS = {
    "duplicates": [(0.5, 0.5)] * 10 + [(0.2, 0.2), (0.8, 0.8)],
    "collinear_x": [(i / 20.0, 0.5) for i in range(1, 20)],
    "collinear_diag": [(i / 20.0, i / 20.0) for i in range(1, 20)],
    "grid": [(x / 6.0, y / 6.0) for x in range(1, 6) for y in range(1, 6)],
    "two_points": [(0.3, 0.3), (0.7, 0.7)],
    "single_point": [(0.5, 0.5)],
    "tight_cluster": [(0.5 + i * 1e-9, 0.5 - i * 1e-9) for i in range(10)],
}


@pytest.fixture(params=sorted(DEGENERATE_DATASETS))
def dataset(request):
    return DEGENERATE_DATASETS[request.param]


@pytest.fixture()
def tree(dataset):
    return bulk_load_str(dataset, capacity=4)


class TestIndexOnDegenerateData:
    def test_build_and_invariants(self, tree):
        tree.check_invariants()

    def test_insertion_built_variant(self, dataset):
        t = RStarTree(capacity=4)
        for i, p in enumerate(dataset):
            t.insert(i, p[0], p[1])
        t.check_invariants()
        assert len(t) == len(dataset)

    def test_window_queries(self, tree, dataset, rng):
        for _ in range(10):
            x1, x2 = sorted((rng.random(), rng.random()))
            y1, y2 = sorted((rng.random(), rng.random()))
            rect = Rect(x1, y1, x2, y2)
            assert (sorted(e.oid for e in tree.window(rect))
                    == brute_window(dataset, rect))


class TestQueriesOnDegenerateData:
    def test_knn(self, tree, dataset, rng):
        for _ in range(10):
            q = (rng.random(), rng.random())
            k = rng.randint(1, len(dataset))
            got = nearest_neighbors(tree, q, k=k)
            want = sorted(math.dist(p, q) for p in dataset)[:k]
            assert [round(n.dist, 10) for n in got] == [
                round(d, 10) for d in want]

    def test_tp_knn_never_wrong(self, tree, dataset, rng):
        for _ in range(10):
            q = (rng.random(), rng.random())
            ang = rng.random() * 2 * math.pi
            v = (math.cos(ang), math.sin(ang))
            result = [n.entry for n in nearest_neighbors(tree, q, k=1)]
            event = tp_knn(tree, q, v, result)
            if event.found:
                assert event.time >= 0.0

    def test_tp_window(self, tree, rng):
        event = tp_window(tree, Rect(0.4, 0.4, 0.6, 0.6), (1.0, 0.3))
        assert event.time >= 0.0 or event.time == math.inf


class TestValidityOnDegenerateData:
    def test_nn_validity_region_sound(self, tree, dataset, rng):
        """On any dataset, points strictly inside the computed region
        must have the same kNN set (soundness never degrades, even when
        ties make the region conservative)."""
        for _ in range(6):
            q = (rng.random(), rng.random())
            k = rng.randint(1, min(3, len(dataset)))
            res = compute_nn_validity(tree, q, k=k, universe=UNIT)
            base_dists = sorted(
                round(math.dist((e.x, e.y), q), 12) for e in res.neighbors)
            assert len(res.neighbors) == k
            checked = 0
            attempts = 0
            while checked < 5 and attempts < 200:
                attempts += 1
                p = (rng.random(), rng.random())
                if not res.region.contains(p, eps=-1e-9):
                    continue
                checked += 1
                got = brute_knn_set(dataset, p, k)
                res_ids = {e.oid for e in res.neighbors}
                if got != res_ids:
                    # Ties: distances must then be exactly equal.
                    got_d = sorted(round(math.dist(dataset[i], p), 12)
                                   for i in got)
                    want_d = sorted(round(math.dist((e.x, e.y), p), 12)
                                    for e in res.neighbors)
                    assert got_d == want_d

    def test_window_validity_sound(self, tree, dataset, rng):
        for _ in range(6):
            f = (rng.random(), rng.random())
            res = compute_window_validity(tree, f, 0.21, 0.17, universe=UNIT)
            base = set(brute_window(dataset, res.window))
            assert {e.oid for e in res.result} == base
            cr = res.conservative_region
            for _ in range(6):
                g = (rng.uniform(cr.xmin, cr.xmax),
                     rng.uniform(cr.ymin, cr.ymax))
                assert set(brute_window(
                    dataset, Rect.around(g, 0.21, 0.17))) == base

    def test_range_validity_sound(self, tree, dataset, rng):
        for _ in range(6):
            f = (rng.random(), rng.random())
            res = compute_range_validity(tree, f, 0.2)
            rho = res.validity_radius
            if not math.isfinite(rho) or rho <= 0:
                continue
            base = {e.oid for e in res.result}
            for _ in range(6):
                ang = rng.random() * 2 * math.pi
                d = rng.random() * rho * 0.999
                g = (f[0] + d * math.cos(ang), f[1] + d * math.sin(ang))
                got = {i for i, p in enumerate(dataset)
                       if math.dist(p, g) <= 0.2}
                assert got == base

    def test_query_exactly_on_duplicate_stack(self):
        tree = bulk_load_str(DEGENERATE_DATASETS["duplicates"], capacity=4)
        res = compute_nn_validity(tree, (0.5, 0.5), k=3, universe=UNIT)
        # All three neighbours are the coincident points at (0.5, 0.5).
        assert all((e.x, e.y) == (0.5, 0.5) for e in res.neighbors)
