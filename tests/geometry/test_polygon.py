"""Tests for repro.geometry.polygon."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import ConvexPolygon, HalfPlane, Point, Rect

UNIT = Rect(0.0, 0.0, 1.0, 1.0)
coords = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)


@st.composite
def halfplanes(draw):
    a = draw(coords)
    b = draw(coords)
    if math.hypot(a, b) < 1e-6:
        a, b = 1.0, 0.0
    c = draw(coords)
    return HalfPlane.make(a, b, c)


class TestConstruction:
    def test_empty(self):
        p = ConvexPolygon.empty()
        assert p.is_empty and p.area() == 0.0 and len(p) == 0

    def test_from_rect(self):
        p = ConvexPolygon.from_rect(Rect(0, 0, 2, 1))
        assert p.num_edges == 4
        assert p.area() == 2.0

    def test_degenerate_two_vertices(self):
        p = ConvexPolygon([(0, 0), (1, 1)])
        assert p.is_empty and p.num_edges == 0

    def test_dedupe(self):
        p = ConvexPolygon([(0, 0), (0, 0), (1, 0), (1, 1), (0, 1), (0, 1e-15)],
                          dedupe_eps=1e-12)
        assert len(p) == 4

    def test_from_halfplanes_strip(self):
        hps = [HalfPlane.make(1, 0, 0.7), HalfPlane.make(-1, 0, -0.3)]
        p = ConvexPolygon.from_halfplanes(hps, UNIT)
        assert math.isclose(p.area(), 0.4, rel_tol=1e-9)

    def test_from_halfplanes_infeasible(self):
        hps = [HalfPlane.make(1, 0, 0.2), HalfPlane.make(-1, 0, -0.8)]
        assert ConvexPolygon.from_halfplanes(hps, UNIT).is_empty


class TestMeasures:
    def test_triangle_area(self):
        p = ConvexPolygon([(0, 0), (2, 0), (0, 2)])
        assert p.area() == 2.0

    def test_perimeter(self):
        p = ConvexPolygon.from_rect(Rect(0, 0, 3, 4))
        assert p.perimeter() == 14.0

    def test_centroid_square(self):
        p = ConvexPolygon.from_rect(Rect(0, 0, 2, 2))
        assert p.centroid() == Point(1, 1)

    def test_centroid_triangle(self):
        p = ConvexPolygon([(0, 0), (3, 0), (0, 3)])
        c = p.centroid()
        assert math.isclose(c.x, 1.0) and math.isclose(c.y, 1.0)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            ConvexPolygon.empty().centroid()

    def test_bounding_rect(self):
        p = ConvexPolygon([(0, 0), (2, 0), (1, 3)])
        assert p.bounding_rect() == Rect(0, 0, 2, 3)

    def test_bounding_rect_empty_raises(self):
        with pytest.raises(ValueError):
            ConvexPolygon.empty().bounding_rect()


class TestContains:
    def test_interior(self):
        p = ConvexPolygon.from_rect(UNIT)
        assert p.contains((0.5, 0.5))

    def test_boundary_closed(self):
        p = ConvexPolygon.from_rect(UNIT)
        assert p.contains((0.0, 0.5))
        assert p.contains((1.0, 1.0))

    def test_outside(self):
        p = ConvexPolygon.from_rect(UNIT)
        assert not p.contains((1.1, 0.5))

    def test_negative_eps_strict(self):
        p = ConvexPolygon.from_rect(UNIT)
        assert not p.contains((0.0, 0.5), eps=-1e-6)
        assert p.contains((0.5, 0.5), eps=-1e-6)

    def test_empty_contains_nothing(self):
        assert not ConvexPolygon.empty().contains((0, 0))


class TestClip:
    def test_clip_half(self):
        p = ConvexPolygon.from_rect(UNIT).clip(HalfPlane.make(1, 0, 0.5))
        assert math.isclose(p.area(), 0.5)

    def test_clip_no_effect(self):
        p = ConvexPolygon.from_rect(UNIT)
        q = p.clip(HalfPlane.make(1, 0, 5.0))
        assert q.vertices == p.vertices

    def test_clip_everything(self):
        p = ConvexPolygon.from_rect(UNIT).clip(HalfPlane.make(1, 0, -1.0))
        assert p.is_empty

    def test_clip_corner_makes_pentagon(self):
        hp = HalfPlane.make(1, 1, 1.5)  # cuts the (1,1) corner
        p = ConvexPolygon.from_rect(UNIT).clip(hp)
        assert p.num_edges == 5
        assert math.isclose(p.area(), 1 - 0.125)

    def test_clip_preserves_surviving_vertices_exactly(self):
        p = ConvexPolygon.from_rect(UNIT)
        q = p.clip(HalfPlane.make(1, 0, 0.5))
        assert Point(0.0, 0.0) in q.vertices
        assert Point(0.0, 1.0) in q.vertices

    def test_clip_empty_stays_empty(self):
        assert ConvexPolygon.empty().clip(HalfPlane.make(1, 0, 10)).is_empty

    @given(halfplanes())
    def test_clip_never_grows_area(self, hp):
        p = ConvexPolygon.from_rect(UNIT)
        assert p.clip(hp).area() <= p.area() + 1e-9

    @given(st.lists(halfplanes(), min_size=1, max_size=8))
    @settings(deadline=None)
    def test_clip_result_inside_all_halfplanes(self, hps):
        p = ConvexPolygon.from_rect(UNIT)
        for hp in hps:
            p = p.clip(hp)
        for v in p.vertices:
            assert UNIT.contains_point(v, eps=1e-9)
            for hp in hps:
                assert hp.contains(v, eps=1e-7)

    @given(st.lists(halfplanes(), min_size=1, max_size=6), st.randoms())
    @settings(deadline=None, max_examples=50)
    def test_clip_agrees_with_pointwise_membership(self, hps, rnd):
        p = ConvexPolygon.from_rect(UNIT)
        for hp in hps:
            p = p.clip(hp)
        for _ in range(20):
            pt = (rnd.random(), rnd.random())
            truth = all(hp.contains(pt) for hp in hps)
            if truth:
                # Interior points of the intersection must be in the polygon.
                margin = min(-hp.signed_distance(pt) for hp in hps)
                if margin > 1e-6:
                    assert p.contains(pt, eps=1e-9)
            else:
                margin = max(hp.signed_distance(pt) for hp in hps)
                if margin > 1e-6:
                    assert not p.contains(pt, eps=-1e-9) or p.is_empty

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_clip_order_independent_area(self, seed):
        rnd = random.Random(seed)
        hps = [HalfPlane.make(rnd.uniform(-1, 1), rnd.uniform(-1, 1) or 1.0,
                              rnd.uniform(-0.5, 1.5)) for _ in range(5)]
        base = ConvexPolygon.from_rect(UNIT)
        a = base
        for hp in hps:
            a = a.clip(hp)
        b = base
        for hp in reversed(hps):
            b = b.clip(hp)
        assert math.isclose(a.area(), b.area(), rel_tol=1e-6, abs_tol=1e-9)
