"""Tests for repro.geometry.rectilinear."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect, RectilinearRegion

BASE = Rect(0.0, 0.0, 1.0, 1.0)
unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def holes_in_unit(draw):
    n = draw(st.integers(min_value=0, max_value=5))
    out = []
    for _ in range(n):
        x1, x2 = sorted((draw(unit), draw(unit)))
        y1, y2 = sorted((draw(unit), draw(unit)))
        out.append(Rect(x1, y1, x2, y2))
    return out


class TestBasics:
    def test_no_holes_area(self):
        assert RectilinearRegion(BASE).area() == 1.0

    def test_no_holes_contains(self):
        r = RectilinearRegion(BASE)
        assert r.contains((0.5, 0.5)) and not r.contains((1.5, 0.5))

    def test_degenerate_base(self):
        r = RectilinearRegion(Rect(0, 0, 0, 1))
        assert r.area() == 0.0

    def test_invalid_base_raises(self):
        with pytest.raises(ValueError):
            RectilinearRegion(Rect(1, 0, 0, 1))

    def test_single_hole_area(self):
        r = RectilinearRegion(BASE, [Rect(0.25, 0.25, 0.75, 0.75)])
        assert math.isclose(r.area(), 0.75)

    def test_hole_clipped_to_base(self):
        r = RectilinearRegion(BASE, [Rect(0.5, -1, 2.0, 2.0)])
        assert math.isclose(r.area(), 0.5)
        assert r.holes == [Rect(0.5, 0.0, 1.0, 1.0)]

    def test_disjoint_hole_ignored(self):
        r = RectilinearRegion(BASE, [Rect(2, 2, 3, 3)])
        assert r.area() == 1.0 and not r.holes

    def test_zero_area_hole_ignored(self):
        r = RectilinearRegion(BASE, [Rect(0.5, 0.0, 0.5, 1.0)])
        assert r.area() == 1.0 and not r.holes

    def test_overlapping_holes_not_double_counted(self):
        r = RectilinearRegion(BASE, [Rect(0.0, 0.0, 0.6, 1.0),
                                     Rect(0.4, 0.0, 1.0, 1.0)])
        assert math.isclose(r.area(), 0.0)

    def test_contains_inside_hole(self):
        r = RectilinearRegion(BASE, [Rect(0.25, 0.25, 0.75, 0.75)])
        assert not r.contains((0.5, 0.5))
        assert r.contains((0.1, 0.1))

    def test_hole_boundary_counts_as_region(self):
        r = RectilinearRegion(BASE, [Rect(0.25, 0.25, 0.75, 0.75)])
        assert r.contains((0.25, 0.5))

    def test_full_cover(self):
        r = RectilinearRegion(BASE, [BASE])
        assert r.area() == 0.0


class TestProperties:
    @given(holes_in_unit())
    @settings(deadline=None)
    def test_area_in_bounds(self, holes):
        area = RectilinearRegion(BASE, holes).area()
        assert -1e-9 <= area <= 1.0 + 1e-9

    @given(holes_in_unit())
    @settings(deadline=None)
    def test_area_at_least_base_minus_hole_sum(self, holes):
        area = RectilinearRegion(BASE, holes).area()
        lower = 1.0 - sum(h.intersection(BASE).area()
                          for h in holes if h.intersection(BASE))
        assert area >= lower - 1e-9

    @given(holes_in_unit(), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(deadline=None, max_examples=40)
    def test_area_matches_monte_carlo(self, holes, seed):
        rnd = random.Random(seed)
        region = RectilinearRegion(BASE, holes)
        samples = 800
        hits = sum(
            1 for _ in range(samples)
            if region.contains((rnd.random(), rnd.random())))
        assert abs(hits / samples - region.area()) < 0.08

    @given(holes_in_unit())
    @settings(deadline=None)
    def test_monotone_adding_holes(self, holes):
        prev = 1.0
        for i in range(len(holes) + 1):
            area = RectilinearRegion(BASE, holes[:i]).area()
            assert area <= prev + 1e-9
            prev = area
