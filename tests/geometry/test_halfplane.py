"""Tests for repro.geometry.halfplane."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import HalfPlane, Point, bisector_halfplane, perpendicular_bisector
from repro.geometry.point import distance

coords = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


class TestHalfPlane:
    def test_make_normalizes(self):
        hp = HalfPlane.make(3, 4, 10)
        assert math.isclose(math.hypot(hp.a, hp.b), 1.0)
        assert math.isclose(hp.c, 2.0)

    def test_make_zero_normal_raises(self):
        with pytest.raises(ValueError):
            HalfPlane.make(0, 0, 1)

    def test_contains_closed(self):
        hp = HalfPlane.make(1, 0, 1)  # x <= 1
        assert hp.contains((0.5, 7))
        assert hp.contains((1.0, -3))
        assert not hp.contains((1.5, 0))

    def test_contains_eps(self):
        hp = HalfPlane.make(1, 0, 1)
        assert hp.contains((1.0005, 0), eps=0.001)

    def test_signed_distance_is_euclidean(self):
        hp = HalfPlane.make(0, 2, 4)  # y <= 2
        assert math.isclose(hp.signed_distance((0, 5)), 3.0)
        assert math.isclose(hp.signed_distance((0, -1)), -3.0)

    def test_flipped(self):
        hp = HalfPlane.make(1, 0, 1)
        assert not hp.flipped().contains((0, 0))
        assert hp.flipped().contains((2, 0))

    def test_boundary_points_on_line(self):
        hp = HalfPlane.make(1, 2, 3)
        for p in hp.boundary_points(span=5.0):
            assert abs(hp.signed_distance(p)) < 1e-9

    def test_boundary_points_distinct(self):
        a, b = HalfPlane.make(0, 1, 0).boundary_points(span=2.0)
        assert math.isclose(math.dist(a, b), 4.0)


class TestBisector:
    def test_contains_first_point(self):
        hp = perpendicular_bisector((0, 0), (2, 0))
        assert hp.contains((0, 0))
        assert not hp.contains((2, 0))

    def test_boundary_is_midline(self):
        hp = perpendicular_bisector((0, 0), (2, 0))
        assert abs(hp.signed_distance((1, 123.0))) < 1e-9

    def test_coincident_raises(self):
        with pytest.raises(ValueError):
            perpendicular_bisector((1, 1), (1, 1))

    def test_alias(self):
        assert bisector_halfplane((0, 0), (1, 1)) == perpendicular_bisector(
            (0, 0), (1, 1))

    @given(coords, coords, coords, coords, coords, coords)
    def test_halfplane_matches_distance_comparison(self, px, py, qx, qy, tx, ty):
        p, q, t = (px, py), (qx, qy), (tx, ty)
        if distance(p, q) < 1e-6:
            return
        hp = perpendicular_bisector(p, q)
        dp, dq = distance(t, p), distance(t, q)
        if abs(dp - dq) < 1e-6:
            return  # too close to the boundary for strict comparison
        assert hp.contains(t) == (dp < dq)

    @given(coords, coords, coords, coords)
    def test_midpoint_on_boundary(self, px, py, qx, qy):
        if distance((px, py), (qx, qy)) < 1e-6:
            return
        hp = perpendicular_bisector((px, py), (qx, qy))
        mid = ((px + qx) / 2, (py + qy) / 2)
        assert abs(hp.signed_distance(mid)) < 1e-6
