"""Tests for repro.geometry.rect."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point, Rect

coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return Rect(x1, y1, x2, y2)


class TestConstruction:
    def test_from_points(self):
        r = Rect.from_points([(0, 1), (2, -1), (1, 5)])
        assert r == Rect(0, -1, 2, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.from_points([])

    def test_from_rects(self):
        r = Rect.from_rects([Rect(0, 0, 1, 1), Rect(2, -1, 3, 0.5)])
        assert r == Rect(0, -1, 3, 1)

    def test_from_rects_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.from_rects([])

    def test_around(self):
        r = Rect.around((1, 2), 4, 6)
        assert r == Rect(-1, -1, 3, 5)

    def test_around_negative_extent_raises(self):
        with pytest.raises(ValueError):
            Rect.around((0, 0), -1, 1)

    def test_validate_degenerate(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1).validate()

    def test_validate_ok_returns_self(self):
        r = Rect(0, 0, 1, 1)
        assert r.validate() is r


class TestMeasures:
    def test_area_width_height(self):
        r = Rect(0, 0, 2, 3)
        assert (r.width, r.height, r.area()) == (2, 3, 6)

    def test_margin(self):
        assert Rect(0, 0, 2, 3).margin() == 5

    def test_center(self):
        assert Rect(0, 0, 2, 4).center() == Point(1, 2)

    def test_corners_ccw(self):
        corners = list(Rect(0, 0, 1, 2).corners())
        assert corners == [Point(0, 0), Point(1, 0), Point(1, 2), Point(0, 2)]

    def test_degenerate_point_rect(self):
        r = Rect(1, 1, 1, 1)
        assert r.area() == 0 and not r.is_empty

    def test_is_empty(self):
        assert Rect(1, 0, 0, 1).is_empty
        assert Rect(1, 0, 0, 1).area() == 0.0


class TestPredicates:
    def test_contains_point_closed(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point((0, 0))
        assert r.contains_point((1, 1))
        assert not r.contains_point((1.0001, 0.5))

    def test_contains_point_eps(self):
        assert Rect(0, 0, 1, 1).contains_point((1.0001, 0.5), eps=0.001)

    def test_contains_point_open(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point_open((0.5, 0.5))
        assert not r.contains_point_open((0, 0.5))

    def test_contains_rect(self):
        assert Rect(0, 0, 2, 2).contains_rect(Rect(0.5, 0.5, 1, 1))
        assert Rect(0, 0, 2, 2).contains_rect(Rect(0, 0, 2, 2))
        assert not Rect(0, 0, 2, 2).contains_rect(Rect(1, 1, 3, 1.5))

    def test_intersects_overlap(self):
        assert Rect(0, 0, 2, 2).intersects(Rect(1, 1, 3, 3))

    def test_intersects_touching_edge(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))

    def test_intersects_disjoint(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(2, 2, 3, 3))


class TestConstructions:
    def test_intersection(self):
        got = Rect(0, 0, 2, 2).intersection(Rect(1, 1, 3, 3))
        assert got == Rect(1, 1, 2, 2)

    def test_intersection_disjoint_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None

    def test_overlap_area(self):
        assert Rect(0, 0, 2, 2).overlap_area(Rect(1, 1, 3, 3)) == 1.0
        assert Rect(0, 0, 1, 1).overlap_area(Rect(5, 5, 6, 6)) == 0.0

    def test_union(self):
        assert Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3)) == Rect(0, 0, 3, 3)

    def test_extended(self):
        assert Rect(0, 0, 1, 1).extended((2, -1)) == Rect(0, -1, 2, 1)

    def test_enlargement(self):
        assert Rect(0, 0, 1, 1).enlargement(Rect(0, 0, 2, 1)) == 1.0
        assert Rect(0, 0, 2, 2).enlargement(Rect(1, 1, 2, 2)) == 0.0

    def test_inflated(self):
        assert Rect(0, 0, 1, 1).inflated(0.5, 1) == Rect(-0.5, -1, 1.5, 2)

    def test_inflated_negative_can_empty(self):
        assert Rect(0, 0, 1, 1).inflated(-1, -1).is_empty


class TestDistances:
    def test_mindist_inside_zero(self):
        assert Rect(0, 0, 2, 2).mindist((1, 1)) == 0.0

    def test_mindist_side(self):
        assert Rect(0, 0, 1, 1).mindist((2, 0.5)) == 1.0

    def test_mindist_corner(self):
        assert math.isclose(Rect(0, 0, 1, 1).mindist((2, 2)), math.sqrt(2))

    def test_maxdist_from_center(self):
        assert math.isclose(Rect(0, 0, 2, 2).maxdist((1, 1)), math.sqrt(2))

    def test_maxdist_outside(self):
        assert math.isclose(Rect(0, 0, 1, 1).maxdist((2, 0)), math.sqrt(5))

    @given(rects(), coords, coords)
    def test_mindist_le_maxdist(self, r, px, py):
        assert r.mindist((px, py)) <= r.maxdist((px, py)) + 1e-9

    @given(rects(), coords, coords)
    def test_mindist_bounds_corner_distances(self, r, px, py):
        md = r.mindist((px, py))
        for c in r.corners():
            assert md <= math.dist((px, py), c) + 1e-9

    @given(rects(), coords, coords)
    def test_mindist_sq_consistent(self, r, px, py):
        assert math.isclose(r.mindist((px, py)) ** 2, r.mindist_sq((px, py)),
                            rel_tol=1e-9, abs_tol=1e-12)


class TestPropertyAlgebra:
    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)

    @given(rects(), rects())
    def test_intersection_contained_in_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_rect(inter) and b.contains_rect(inter)

    @given(rects(), rects())
    def test_intersection_symmetric(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(rects(), rects())
    def test_inclusion_exclusion_bound(self, a, b):
        # area(union MBR) >= area(a) + area(b) - overlap
        assert (a.union(b).area()
                >= a.area() + b.area() - a.overlap_area(b) - 1e-6)
