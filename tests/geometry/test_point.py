"""Tests for repro.geometry.point."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point, distance, distance_sq, midpoint

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestPoint:
    def test_is_tuple_like(self):
        p = Point(1.0, 2.0)
        x, y = p
        assert (x, y) == (1.0, 2.0)
        assert p[0] == 1.0 and p[1] == 2.0

    def test_hashable_and_equal(self):
        assert Point(1, 2) == Point(1, 2)
        assert hash(Point(1, 2)) == hash(Point(1, 2))
        assert Point(1, 2) != Point(2, 1)

    def test_distance_to(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_to_accepts_tuples(self):
        assert Point(0, 0).distance_to((3, 4)) == 5.0

    def test_distance_sq_to(self):
        assert Point(1, 1).distance_sq_to(Point(4, 5)) == 25.0

    def test_translated(self):
        assert Point(1, 2).translated(0.5, -0.5) == Point(1.5, 1.5)

    def test_towards_unit_vector(self):
        d = Point(0, 0).towards(Point(10, 0))
        assert d == Point(1.0, 0.0)

    def test_towards_diagonal(self):
        d = Point(0, 0).towards(Point(1, 1))
        assert math.isclose(d.x, 1 / math.sqrt(2))
        assert math.isclose(d.y, 1 / math.sqrt(2))

    def test_towards_coincident_raises(self):
        with pytest.raises(ValueError):
            Point(1, 1).towards(Point(1, 1))

    @given(finite, finite, finite, finite)
    def test_towards_has_unit_norm(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        if a.distance_to(b) < 1e-9:
            return
        d = a.towards(b)
        assert math.isclose(math.hypot(d.x, d.y), 1.0, rel_tol=1e-9)


class TestHelpers:
    def test_distance_symmetric(self):
        assert distance((0, 0), (1, 1)) == distance((1, 1), (0, 0))

    def test_distance_matches_sq(self):
        assert math.isclose(distance((0, 1), (2, 5)) ** 2,
                            distance_sq((0, 1), (2, 5)))

    def test_midpoint(self):
        assert midpoint((0, 0), (2, 4)) == Point(1.0, 2.0)

    @given(finite, finite, finite, finite)
    def test_midpoint_equidistant(self, ax, ay, bx, by):
        m = midpoint((ax, ay), (bx, by))
        assert math.isclose(distance(m, (ax, ay)), distance(m, (bx, by)),
                            rel_tol=1e-9, abs_tol=1e-9)

    @given(finite, finite, finite, finite)
    def test_triangle_inequality(self, ax, ay, bx, by):
        origin = (0.0, 0.0)
        assert (distance(origin, (bx, by))
                <= distance(origin, (ax, ay)) + distance((ax, ay), (bx, by))
                + 1e-6)
