"""Tests for the SVG renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.geometry import ConvexPolygon, Rect
from repro.index import bulk_load_str
from repro.core import compute_nn_validity, compute_window_validity
from repro.datasets import uniform_points
from repro.viz import SvgCanvas, render_nn_validity, render_window_validity

UNIT = Rect(0.0, 0.0, 1.0, 1.0)
SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ET.fromstring(svg_text)


class TestSvgCanvas:
    def test_empty_canvas_is_valid_xml(self):
        root = parse(SvgCanvas(UNIT).to_svg())
        assert root.tag == f"{SVG_NS}svg"

    def test_degenerate_universe_raises(self):
        with pytest.raises(ValueError):
            SvgCanvas(Rect(0, 0, 0, 1))

    def test_points_rendered(self):
        canvas = SvgCanvas(UNIT)
        canvas.add_points([(0.1, 0.1), (0.9, 0.9)])
        root = parse(canvas.to_svg())
        assert len(root.findall(f"{SVG_NS}circle")) == 2

    def test_y_axis_points_up(self):
        canvas = SvgCanvas(UNIT, width_px=100, margin_px=0)
        canvas.add_points([(0.0, 0.0), (0.0, 1.0)])
        root = parse(canvas.to_svg())
        low, high = root.findall(f"{SVG_NS}circle")
        assert float(low.get("cy")) > float(high.get("cy"))

    def test_rect_and_polygon_and_disk(self):
        canvas = SvgCanvas(UNIT)
        canvas.add_rect(Rect(0.1, 0.1, 0.4, 0.3))
        canvas.add_polygon(ConvexPolygon([(0.5, 0.5), (0.7, 0.5),
                                          (0.6, 0.8)]))
        canvas.add_disk((0.5, 0.5), 0.2)
        root = parse(canvas.to_svg())
        assert root.findall(f"{SVG_NS}rect")  # background + shape
        assert len(root.findall(f"{SVG_NS}polygon")) == 1

    def test_empty_polygon_skipped(self):
        canvas = SvgCanvas(UNIT)
        canvas.add_polygon(ConvexPolygon.empty())
        root = parse(canvas.to_svg())
        assert not root.findall(f"{SVG_NS}polygon")

    def test_title_escaped(self):
        canvas = SvgCanvas(UNIT)
        canvas.add_title("a < b & c")
        assert "a &lt; b &amp; c" in canvas.to_svg()

    def test_save(self, tmp_path):
        canvas = SvgCanvas(UNIT)
        canvas.add_marker((0.5, 0.5), label="q")
        path = tmp_path / "out.svg"
        canvas.save(str(path))
        parse(path.read_text())

    def test_non_unit_universe_mapping(self):
        big = Rect(0.0, 0.0, 800_000.0, 800_000.0)
        canvas = SvgCanvas(big, width_px=200, margin_px=0)
        canvas.add_points([(400_000.0, 400_000.0)])
        root = parse(canvas.to_svg())
        c = root.find(f"{SVG_NS}circle")
        assert float(c.get("cx")) == pytest.approx(100.0)
        assert float(c.get("cy")) == pytest.approx(100.0)


class TestHighLevelRenderers:
    @pytest.fixture(scope="class")
    def tree_points(self):
        pts = uniform_points(500, seed=8)
        return bulk_load_str(pts, capacity=16), pts

    def test_render_nn_validity(self, tree_points, tmp_path):
        tree, pts = tree_points
        res = compute_nn_validity(tree, (0.5, 0.5), k=2, universe=UNIT)
        canvas = render_nn_validity(res, UNIT, points=pts)
        root = parse(canvas.to_svg())
        assert root.findall(f"{SVG_NS}polygon")  # the validity region
        assert len(root.findall(f"{SVG_NS}circle")) >= len(pts)

    def test_render_window_validity(self, tree_points):
        tree, pts = tree_points
        res = compute_window_validity(tree, (0.5, 0.5), 0.15, 0.1,
                                      universe=UNIT)
        canvas = render_window_validity(res, UNIT, points=pts)
        root = parse(canvas.to_svg())
        # Background + window + inner + conservative rects at least.
        assert len(root.findall(f"{SVG_NS}rect")) >= 4
