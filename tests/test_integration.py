"""Cross-module integration tests.

These exercise full pipelines — dataset generation, bulk loading,
query processing, validity computation, client protocol — and verify
global consistency properties that no single module test covers.
"""

import math
import random

import pytest

from repro import (
    LocationServer,
    MobileClient,
    Rect,
    bulk_load_str,
    compute_nn_validity,
    compute_window_validity,
    nearest_neighbors,
    uniform_points,
)
from repro.baselines import order_k_voronoi_cell
from repro.core import compute_range_validity
from repro.datasets.synthetic import gaussian_clusters
from repro.index.metrics import average_occupancy, tree_level_stats

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


class TestValidityRegionsTileThePlane:
    """Validity regions of all queries with the same result partition
    correctly: two queries whose regions overlap (in the interior) must
    have the same result."""

    def test_nn_regions_consistent_across_queries(self):
        pts = uniform_points(400, seed=21)
        tree = bulk_load_str(pts, capacity=8)
        rnd = random.Random(3)
        computed = []
        for _ in range(25):
            q = (rnd.random(), rnd.random())
            res = compute_nn_validity(tree, q, k=2, universe=UNIT)
            computed.append(res)
        for a in computed:
            for b in computed:
                ca = a.region.centroid()
                if b.region.contains(ca, eps=-1e-9):
                    assert ({e.oid for e in a.neighbors}
                            == {e.oid for e in b.neighbors})

    def test_order_k_cell_area_sums(self):
        """Average validity-region area times the number of order-k cells
        approximates the universe area."""
        pts = uniform_points(800, seed=22)
        tree = bulk_load_str(pts, capacity=8)
        rnd = random.Random(5)
        areas = []
        for _ in range(60):
            q = (rnd.random(), rnd.random())
            res = compute_nn_validity(tree, q, k=1, universe=UNIT)
            areas.append(res.region.area())
        # Size-biased mean cell area is within a small factor of A/N.
        mean = sum(areas) / len(areas)
        assert 0.5 / 800 < mean < 4.0 / 800


class TestAllQueryTypesAgree:
    """A window inscribed in a range, inscribed in the kNN distance,
    must produce nested results."""

    def test_nesting(self):
        pts = gaussian_clusters(1500, 5, spread=0.1, seed=9)
        tree = bulk_load_str(pts, capacity=16)
        rnd = random.Random(11)
        for _ in range(15):
            f = (rnd.uniform(0.2, 0.8), rnd.uniform(0.2, 0.8))
            r = 0.1
            range_res = {e.oid for e in
                         compute_range_validity(tree, f, r).result}
            # The inscribed window (side r*sqrt(2)) result is a subset.
            side = r * math.sqrt(2)
            window_res = {e.oid for e in compute_window_validity(
                tree, f, side, side, universe=UNIT).result}
            assert window_res <= range_res
            # Every kNN result within distance r is in the range result.
            knn = nearest_neighbors(tree, f, k=5)
            for neighbor in knn:
                if neighbor.dist <= r:
                    assert neighbor.entry.oid in range_res


class TestDynamicDatasets:
    """Validity machinery stays correct while the tree mutates."""

    def test_validity_after_insert_delete(self):
        rnd = random.Random(31)
        pts = [(rnd.random(), rnd.random()) for _ in range(300)]
        tree = bulk_load_str(pts, capacity=8)
        live = {i: p for i, p in enumerate(pts)}
        next_id = len(pts)
        for step in range(30):
            # Mutate.
            if rnd.random() < 0.5 and live:
                oid = rnd.choice(list(live))
                x, y = live.pop(oid)
                assert tree.delete(oid, x, y)
            else:
                p = (rnd.random(), rnd.random())
                tree.insert(next_id, p[0], p[1])
                live[next_id] = p
                next_id += 1
            # Query and verify against the live set.
            q = (rnd.random(), rnd.random())
            res = compute_nn_validity(tree, q, k=1, universe=UNIT)
            points = list(live.values())
            ids = list(live.keys())
            cell = order_k_voronoi_cell(
                [live[res.neighbors[0].oid]],
                [p for i, p in live.items() if i != res.neighbors[0].oid],
                UNIT, eps=1e-12)
            assert math.isclose(res.region.area(), cell.area(),
                                rel_tol=1e-6, abs_tol=1e-12)


class TestServerSideCostSanity:
    def test_tree_structure_matches_paper_setup(self):
        pts = uniform_points(100_000, seed=23)
        tree = bulk_load_str(pts)  # default 4KB/20B geometry
        assert tree.capacity == 204
        assert tree.height == 3  # 100k points, fanout ~142
        occ = average_occupancy(tree)
        assert 0.6 < occ <= 0.75  # STR fill 0.7
        levels = tree_level_stats(tree)
        assert levels[0].num_nodes > 500  # leaves

    def test_phase_totals_add_up(self):
        pts = uniform_points(5_000, seed=24)
        tree = bulk_load_str(pts, capacity=32)
        tree.disk.reset_stats()
        compute_nn_validity(tree, (0.5, 0.5), k=1, universe=UNIT)
        compute_window_validity(tree, (0.5, 0.5), 0.05, 0.05, universe=UNIT)
        stats = tree.disk.stats
        assert stats.total_node_accesses == sum(
            stats.node_accesses_by_phase().values())
        assert set(stats.node_accesses_by_phase()) == {
            "nn", "tpnn", "result", "influence"}


class TestEndToEndProtocolCorrectness:
    def test_long_session_mixed_queries(self):
        pts = uniform_points(3_000, seed=25)
        server = LocationServer.from_points(pts, universe=UNIT,
                                            buffer_fraction=0.1)
        client = MobileClient(server, incremental=True)
        rnd = random.Random(77)
        pos = [0.5, 0.5]
        points = [tuple(p) for p in pts]
        for _ in range(120):
            pos[0] = min(max(pos[0] + rnd.uniform(-0.01, 0.01), 0), 1)
            pos[1] = min(max(pos[1] + rnd.uniform(-0.01, 0.01), 0), 1)
            p = tuple(pos)
            knn = client.knn(p, k=3)
            want = sorted(range(len(points)),
                          key=lambda i: math.dist(points[i], p))[:3]
            assert {e.oid for e in knn} == set(want)
            win = client.window(p, 0.08, 0.08)
            rect = Rect.around(p, 0.08, 0.08)
            assert ({e.oid for e in win}
                    == {i for i, pt in enumerate(points)
                        if rect.contains_point(pt)})
            rng_res = client.range(p, 0.06)
            assert ({e.oid for e in rng_res}
                    == {i for i, pt in enumerate(points)
                        if math.dist(pt, p) <= 0.06})
        assert client.stats.cache_answers > 0
