"""Tests for Voronoi-cell construction and the [ZL01] baseline."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect
from repro.index import bulk_load_str
from repro.queries import nearest_neighbors
from repro.baselines import (
    VoronoiBaselineServer,
    VoronoiClient,
    order_k_voronoi_cell,
    voronoi_cell,
    voronoi_cell_indexed,
)

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


class TestVoronoiCell:
    def test_two_sites_halves(self):
        sites = [(0.25, 0.5), (0.75, 0.5)]
        cell = voronoi_cell(sites, 0, UNIT)
        assert math.isclose(cell.area(), 0.5)

    def test_cells_partition_the_universe(self, rng):
        sites = [(rng.random(), rng.random()) for _ in range(30)]
        total = sum(voronoi_cell(sites, i, UNIT).area()
                    for i in range(len(sites)))
        assert math.isclose(total, 1.0, rel_tol=1e-6)

    def test_cell_contains_its_site(self, rng):
        sites = [(rng.random(), rng.random()) for _ in range(20)]
        for i in range(20):
            assert voronoi_cell(sites, i, UNIT).contains(sites[i], eps=1e-9)

    def test_indexed_matches_exact(self, rng):
        sites = [(rng.random(), rng.random()) for _ in range(200)]
        tree = bulk_load_str(sites, capacity=8)
        entries = {e.oid: e for e in tree.points()}
        for i in rng.sample(range(200), 25):
            exact = voronoi_cell(sites, i, UNIT)
            indexed = voronoi_cell_indexed(tree, entries[i], UNIT)
            assert math.isclose(exact.area(), indexed.area(),
                                rel_tol=1e-6, abs_tol=1e-12)

    def test_indexed_single_point(self):
        tree = bulk_load_str([(0.5, 0.5)], capacity=4)
        entry = next(tree.points())
        cell = voronoi_cell_indexed(tree, entry, UNIT)
        assert math.isclose(cell.area(), 1.0)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(deadline=None, max_examples=20)
    def test_order_k_cells_partition(self, seed):
        """Order-k cells over all k-subsets tile the universe."""
        rnd = random.Random(seed)
        sites = [(rnd.random(), rnd.random()) for _ in range(7)]
        k = rnd.randint(1, 3)
        from itertools import combinations
        total = 0.0
        for subset in combinations(range(len(sites)), k):
            inside = [sites[i] for i in subset]
            outside = [sites[i] for i in range(len(sites))
                       if i not in subset]
            total += order_k_voronoi_cell(inside, outside, UNIT).area()
        assert math.isclose(total, 1.0, rel_tol=1e-6)


class TestZL01Baseline:
    @pytest.fixture(scope="class")
    def server(self):
        rnd = random.Random(5)
        sites = [(rnd.random(), rnd.random()) for _ in range(150)]
        tree = bulk_load_str(sites, capacity=8)
        server = VoronoiBaselineServer(tree, UNIT)
        server.precompute()
        return server

    def test_query_returns_true_nn(self, server, rng):
        for _ in range(20):
            q = (rng.random(), rng.random())
            nn, validity = server.query(q, v_max=1.0)
            want = nearest_neighbors(server.tree, q, k=1)[0].entry
            assert nn.oid == want.oid
            assert validity >= 0.0

    def test_validity_time_is_conservative(self, server, rng):
        """Within time T at speed <= v_max the NN provably cannot change."""
        for _ in range(20):
            q = (rng.random(), rng.random())
            nn, t = server.query(q, v_max=1.0)
            if t == 0.0:
                continue
            ang = rng.random() * 2 * math.pi
            # Move exactly t * v_max * 0.99 in a random direction.
            p = (q[0] + math.cos(ang) * t * 0.99,
                 q[1] + math.sin(ang) * t * 0.99)
            if not UNIT.contains_point(p):
                continue
            assert nearest_neighbors(server.tree, p, k=1)[0].entry.oid == nn.oid

    def test_higher_vmax_shorter_validity(self, server):
        _, t_slow = server.query((0.5, 0.5), v_max=1.0)
        _, t_fast = server.query((0.5, 0.5), v_max=10.0)
        assert math.isclose(t_slow, 10.0 * t_fast, rel_tol=1e-9)

    def test_bad_vmax_raises(self, server):
        with pytest.raises(ValueError):
            server.query((0.5, 0.5), v_max=0.0)

    def test_cell_not_precomputed_raises(self):
        tree = bulk_load_str([(0.5, 0.5)], capacity=4)
        server = VoronoiBaselineServer(tree, UNIT)
        with pytest.raises(KeyError):
            server.cell_of(0)

    def test_client_caches_until_expiry(self, server):
        client = VoronoiClient(server, v_max=0.5)
        a = client.nn((0.5, 0.5), now=0.0)
        b = client.nn((0.5, 0.5), now=1e-6)
        assert a.oid == b.oid
        assert client.server_queries == 1
        assert client.cache_answers == 1

    def test_client_requeries_after_expiry(self, server):
        client = VoronoiClient(server, v_max=0.5)
        client.nn((0.5, 0.5), now=0.0)
        client.nn((0.9, 0.9), now=1e9)
        assert client.server_queries == 2
