"""Tests for the [SR01], TP, and naive baselines."""

import math
import random

import pytest

from repro.geometry import Rect
from repro.index import bulk_load_str
from repro.baselines import NaiveClient, SR01Client, SR01Server, TPClient
from repro.mobility import random_waypoint, straight_run
from tests.conftest import brute_knn_set, brute_window

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


class TestSR01:
    def test_server_returns_m_results(self, small_tree):
        server = SR01Server(small_tree)
        got = server.query((0.5, 0.5), k=2, m=8)
        assert len(got) == 8

    def test_m_less_than_k_raises(self, small_tree):
        with pytest.raises(ValueError):
            SR01Server(small_tree).query((0.5, 0.5), k=5, m=2)
        with pytest.raises(ValueError):
            SR01Client(SR01Server(small_tree), k=5, m=2)

    def test_client_answers_correct_along_walk(self, small_tree, uniform_1k,
                                               rng):
        client = SR01Client(SR01Server(small_tree), k=2, m=10)
        pos = [0.5, 0.5]
        for _ in range(80):
            pos[0] = min(max(pos[0] + rng.uniform(-0.01, 0.01), 0), 1)
            pos[1] = min(max(pos[1] + rng.uniform(-0.01, 0.01), 0), 1)
            got = client.knn(tuple(pos))
            assert {e.oid for e in got} == brute_knn_set(uniform_1k,
                                                         tuple(pos), 2)
        assert client.cache_answers > 0
        assert client.server_queries < client.position_updates

    def test_larger_m_saves_more_queries(self, small_tree, rng):
        paths = random_waypoint(UNIT, 100, speed=0.005, seed=3)
        small_m = SR01Client(SR01Server(small_tree), k=1, m=2)
        large_m = SR01Client(SR01Server(small_tree), k=1, m=16)
        for step in paths:
            small_m.knn(step.position)
            large_m.knn(step.position)
        assert large_m.server_queries <= small_m.server_queries

    def test_dataset_smaller_than_m(self):
        tree = bulk_load_str([(0.2, 0.2), (0.8, 0.8)], capacity=4)
        client = SR01Client(SR01Server(tree), k=1, m=10)
        assert client.knn((0.0, 0.0))[0].oid == 0
        assert client.knn((1.0, 1.0))[0].oid == 1  # must re-query correctly


class TestTPClient:
    def test_straight_run_caches(self, small_tree):
        traj = straight_run((0.1, 0.5), (1.0, 0.0), num_steps=50,
                            speed=0.002)
        client = TPClient(small_tree)
        for step in traj:
            client.knn(step.position, step.velocity, step.time, k=1)
        assert client.cache_answers > 0
        assert client.server_queries < 50

    def test_velocity_change_forces_requery(self, small_tree):
        client = TPClient(small_tree)
        client.knn((0.5, 0.5), (1.0, 0.0), now=0.0)
        client.knn((0.5, 0.5), (0.0, 1.0), now=1e-9)
        assert client.server_queries == 2

    def test_answers_correct_on_waypoint_path(self, small_tree, uniform_1k):
        traj = random_waypoint(UNIT, 60, speed=0.01, seed=8)
        client = TPClient(small_tree)
        for step in traj:
            got = client.knn(step.position, step.velocity, step.time, k=1)
            assert {e.oid for e in got} == brute_knn_set(
                uniform_1k, step.position, 1)

    def test_window_answers_correct(self, small_tree, uniform_1k):
        traj = straight_run((0.3, 0.5), (1.0, 0.2), num_steps=40,
                            speed=0.003)
        client = TPClient(small_tree)
        for step in traj:
            got = client.window(step.position, 0.1, 0.1, step.velocity,
                                step.time)
            want = brute_window(uniform_1k,
                                Rect.around(step.position, 0.1, 0.1))
            assert sorted(e.oid for e in got) == want
        assert client.cache_answers > 0

    def test_stationary_client_never_requeries(self, small_tree):
        client = TPClient(small_tree)
        for t in range(5):
            client.knn((0.5, 0.5), (0.0, 0.0), now=float(t))
        assert client.server_queries == 1


class TestNaive:
    def test_always_queries(self, small_tree):
        client = NaiveClient(small_tree)
        for _ in range(10):
            client.knn((0.5, 0.5), k=1)
        assert client.server_queries == 10
        assert client.cache_answers == 0

    def test_knn_correct(self, small_tree, uniform_1k, rng):
        client = NaiveClient(small_tree)
        q = (rng.random(), rng.random())
        got = client.knn(q, k=3)
        assert {e.oid for e in got} == brute_knn_set(uniform_1k, q, 3)

    def test_window_correct(self, small_tree, uniform_1k):
        client = NaiveClient(small_tree)
        got = client.window((0.5, 0.5), 0.2, 0.2)
        assert sorted(e.oid for e in got) == brute_window(
            uniform_1k, Rect.around((0.5, 0.5), 0.2, 0.2))

    def test_bytes_accounted(self, small_tree):
        client = NaiveClient(small_tree)
        client.knn((0.5, 0.5), k=3)
        assert client.bytes_received == 60
