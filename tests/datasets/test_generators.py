"""Tests for dataset and workload generators."""

import math

import numpy as np
import pytest

from repro.geometry import Rect
from repro.datasets import (
    GR_CARDINALITY,
    GR_UNIVERSE,
    NA_CARDINALITY,
    NA_UNIVERSE,
    data_following_queries,
    make_greece_like,
    make_north_america_like,
    square_windows_for_area_fraction,
    uniform_points,
    window_side_for_area,
)
from repro.datasets.synthetic import gaussian_clusters

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


def spatial_skew(points, universe, grid=10):
    """Coefficient of variation of grid-cell counts (0 for uniform)."""
    counts = np.zeros((grid, grid))
    ix = np.clip(((points[:, 0] - universe.xmin) / universe.width
                  * grid).astype(int), 0, grid - 1)
    iy = np.clip(((points[:, 1] - universe.ymin) / universe.height
                  * grid).astype(int), 0, grid - 1)
    np.add.at(counts, (ix, iy), 1)
    return counts.std() / counts.mean()


class TestUniform:
    def test_shape_and_bounds(self):
        pts = uniform_points(500, seed=0)
        assert pts.shape == (500, 2)
        assert pts.min() >= 0.0 and pts.max() <= 1.0

    def test_deterministic(self):
        assert np.array_equal(uniform_points(100, seed=7),
                              uniform_points(100, seed=7))

    def test_different_seeds_differ(self):
        assert not np.array_equal(uniform_points(100, seed=1),
                                  uniform_points(100, seed=2))

    def test_custom_universe(self):
        u = Rect(10, 20, 30, 25)
        pts = uniform_points(200, universe=u, seed=3)
        assert pts[:, 0].min() >= 10 and pts[:, 0].max() <= 30
        assert pts[:, 1].min() >= 20 and pts[:, 1].max() <= 25

    def test_negative_n_raises(self):
        with pytest.raises(ValueError):
            uniform_points(-1)

    def test_low_skew(self):
        pts = uniform_points(20_000, seed=4)
        assert spatial_skew(pts, UNIT) < 0.2


class TestClusters:
    def test_shape(self):
        pts = gaussian_clusters(300, 5, spread=0.02, seed=0)
        assert pts.shape == (300, 2)

    def test_clamped_to_universe(self):
        pts = gaussian_clusters(1000, 3, spread=0.5, seed=1)
        assert pts.min() >= 0.0 and pts.max() <= 1.0

    def test_more_skewed_than_uniform(self):
        clustered = gaussian_clusters(20_000, 10, spread=0.02, seed=2)
        uniform = uniform_points(20_000, seed=2)
        assert spatial_skew(clustered, UNIT) > 2 * spatial_skew(uniform, UNIT)

    def test_size_skew_concentrates(self):
        even = gaussian_clusters(20_000, 50, spread=0.01, seed=3,
                                 size_skew=0.0)
        skewed = gaussian_clusters(20_000, 50, spread=0.01, seed=3,
                                   size_skew=2.0)
        assert spatial_skew(skewed, UNIT) > spatial_skew(even, UNIT)

    def test_zero_clusters_raises(self):
        with pytest.raises(ValueError):
            gaussian_clusters(10, 0, spread=0.1)


class TestRealLike:
    def test_gr_defaults(self):
        pts = make_greece_like(n=2000)
        assert pts.shape == (2000, 2)
        assert GR_UNIVERSE.contains_point((pts[:, 0].min(), pts[:, 1].min()))
        assert GR_UNIVERSE.contains_point((pts[:, 0].max(), pts[:, 1].max()))

    def test_gr_full_cardinality_constant(self):
        assert GR_CARDINALITY == 23_268
        assert NA_CARDINALITY == 569_120

    def test_gr_deterministic(self):
        assert np.array_equal(make_greece_like(n=500), make_greece_like(n=500))

    def test_gr_heavily_skewed(self):
        # Road-network skew shows up at finer grids (line features are
        # thin); a 20x20 grid resolves them.
        pts = make_greece_like(n=10_000)
        assert spatial_skew(pts, GR_UNIVERSE, grid=20) > 1.0

    def test_na_skewed(self):
        pts = make_north_america_like(n=20_000)
        assert pts.shape == (20_000, 2)
        assert spatial_skew(pts, NA_UNIVERSE) > 1.0

    def test_na_deterministic(self):
        assert np.array_equal(make_north_america_like(n=500),
                              make_north_america_like(n=500))

    def test_negative_n_raises(self):
        with pytest.raises(ValueError):
            make_greece_like(n=-1)
        with pytest.raises(ValueError):
            make_north_america_like(n=-1)


class TestWorkload:
    def test_data_following_in_universe(self):
        pts = uniform_points(1000, seed=0)
        qs = data_following_queries(pts, 200, UNIT, seed=1)
        assert qs.shape == (200, 2)
        assert qs.min() >= 0.0 and qs.max() <= 1.0

    def test_data_following_follows_data(self):
        pts = gaussian_clusters(5000, 3, spread=0.01, seed=2)
        qs = data_following_queries(pts, 2000, UNIT, jitter=0.005, seed=3)
        assert spatial_skew(qs, UNIT) > 1.0

    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            data_following_queries(np.empty((0, 2)), 10, UNIT)

    def test_window_side(self):
        assert math.isclose(window_side_for_area(0.04), 0.2)
        with pytest.raises(ValueError):
            window_side_for_area(-1.0)

    def test_square_windows(self):
        pts = uniform_points(1000, seed=4)
        wins = square_windows_for_area_fraction(pts, 50, UNIT, 0.01, seed=5)
        assert len(wins) == 50
        for focus, side in wins:
            assert math.isclose(side, 0.1)
            assert UNIT.contains_point(focus)

    def test_bad_area_fraction_raises(self):
        pts = uniform_points(10, seed=6)
        with pytest.raises(ValueError):
            square_windows_for_area_fraction(pts, 5, UNIT, 0.0)
