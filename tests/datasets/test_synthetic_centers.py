"""Tests for the two-level cluster generation used by the NA stand-in."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.datasets.synthetic import gaussian_clusters, uniform_points

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


class TestExplicitCenters:
    def test_centers_respected(self):
        centers = np.array([[0.1, 0.1], [0.9, 0.9]])
        pts = gaussian_clusters(500, 2, spread=0.001, seed=0,
                                centers=centers)
        # Every point hugs one of the two centres.
        d0 = np.hypot(pts[:, 0] - 0.1, pts[:, 1] - 0.1)
        d1 = np.hypot(pts[:, 0] - 0.9, pts[:, 1] - 0.9)
        assert (np.minimum(d0, d1) < 0.02).all()

    def test_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            gaussian_clusters(10, 3, spread=0.01,
                              centers=np.zeros((2, 2)))

    def test_deterministic_with_centers(self):
        centers = uniform_points(5, seed=1)
        a = gaussian_clusters(100, 5, spread=0.01, seed=2, centers=centers)
        b = gaussian_clusters(100, 5, spread=0.01, seed=2, centers=centers)
        assert np.array_equal(a, b)

    def test_clustered_centers_increase_large_scale_skew(self):
        """Two-level clustering concentrates mass at continental scale."""
        def coarse_skew(points):
            grid = 5
            counts = np.zeros((grid, grid))
            ix = np.clip((points[:, 0] * grid).astype(int), 0, grid - 1)
            iy = np.clip((points[:, 1] * grid).astype(int), 0, grid - 1)
            np.add.at(counts, (ix, iy), 1)
            return counts.std() / counts.mean()

        flat_centers = uniform_points(200, seed=3)
        lumpy_centers = gaussian_clusters(200, 4, spread=0.03, seed=3)
        flat = gaussian_clusters(20_000, 200, spread=0.005, seed=4,
                                 centers=flat_centers)
        lumpy = gaussian_clusters(20_000, 200, spread=0.005, seed=4,
                                  centers=lumpy_centers)
        assert coarse_skew(lumpy) > coarse_skew(flat)
