"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import uniform_points


@pytest.fixture()
def points_file(tmp_path):
    path = tmp_path / "pts.npy"
    np.save(path, uniform_points(500, seed=4))
    return str(path)


@pytest.fixture()
def tree_file(tmp_path, points_file):
    path = tmp_path / "tree.rt"
    assert main(["build", "--points", points_file, "--out", str(path),
                 "--capacity", "8"]) == 0
    return str(path)


class TestDataset:
    @pytest.mark.parametrize("kind", ["uniform", "gr", "na"])
    def test_generates_npy(self, tmp_path, kind, capsys):
        out = tmp_path / f"{kind}.npy"
        assert main(["dataset", "--kind", kind, "--n", "300",
                     "--out", str(out)]) == 0
        pts = np.load(out)
        assert pts.shape == (300, 2)
        assert "300 points" in capsys.readouterr().out


class TestBuild:
    def test_build_reports_stats(self, tmp_path, points_file, capsys):
        out = tmp_path / "t.rt"
        assert main(["build", "--points", points_file,
                     "--out", str(out), "--capacity", "8"]) == 0
        text = capsys.readouterr().out
        assert "500 points" in text
        assert out.exists()


class TestQuery:
    def test_knn(self, tree_file, capsys):
        assert main(["query", "--tree", tree_file, "knn",
                     "0.5", "0.5", "-k", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len([l for l in lines if not l.startswith("#")]) == 2
        assert any("validity region" in l for l in lines)

    def test_window(self, tree_file, capsys):
        assert main(["query", "--tree", tree_file, "window",
                     "0.5", "0.5", "0.2", "0.2"]) == 0
        assert "validity rect" in capsys.readouterr().out

    def test_range(self, tree_file, capsys):
        assert main(["query", "--tree", tree_file, "range",
                     "0.5", "0.5", "0.1"]) == 0
        assert "validity disk" in capsys.readouterr().out


class TestSimulateAndDemo:
    def test_simulate(self, capsys):
        assert main(["simulate", "--n", "2000", "--steps", "30",
                     "--speed", "0.002"]) == 0
        text = capsys.readouterr().out
        assert "validity-region" in text and "naive" in text

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        assert "position updates" in capsys.readouterr().out


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
