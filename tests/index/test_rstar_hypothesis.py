"""Property-based model checking of the R*-tree.

The tree is driven by random insert/delete programs and compared, after
every program, against a plain dictionary model — the classic stateful
model-checking pattern.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.geometry import Rect
from repro.index import RStarTree

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), coord, coord),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=79)),
    ),
    max_size=80,
)


@given(ops, st.integers(min_value=4, max_value=12))
@settings(deadline=None, max_examples=60)
def test_tree_matches_dict_model(program, capacity):
    tree = RStarTree(capacity=capacity)
    model = {}
    next_id = 0
    for op in program:
        if op[0] == "insert":
            tree.insert(next_id, op[1], op[2])
            model[next_id] = (op[1], op[2])
            next_id += 1
        else:
            oid = op[1]
            present = oid in model
            if present:
                p = model[oid]
                assert tree.delete(oid, p[0], p[1])
                del model[oid]
            else:
                assert not tree.delete(oid, 0.5, 0.5)
    tree.check_invariants()
    assert len(tree) == len(model)
    rect = Rect(0.25, 0.25, 0.75, 0.75)
    got = sorted(e.oid for e in tree.window(rect))
    want = sorted(o for o, p in model.items() if rect.contains_point(p))
    assert got == want


@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=4, max_value=10))
@settings(deadline=None, max_examples=30)
def test_random_windows_match_brute_force(seed, capacity):
    rnd = random.Random(seed)
    n = rnd.randint(0, 300)
    points = [(rnd.random(), rnd.random()) for _ in range(n)]
    tree = RStarTree(capacity=capacity)
    for i, p in enumerate(points):
        tree.insert(i, p[0], p[1])
    tree.check_invariants()
    for _ in range(5):
        x1, x2 = sorted((rnd.random(), rnd.random()))
        y1, y2 = sorted((rnd.random(), rnd.random()))
        rect = Rect(x1, y1, x2, y2)
        got = sorted(e.oid for e in tree.window(rect))
        want = sorted(i for i, p in enumerate(points)
                      if rect.contains_point(p))
        assert got == want
