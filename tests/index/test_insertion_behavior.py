"""Behavioural tests for ChooseSubtree and forced reinsertion."""

import random

import pytest

from repro.geometry import Rect
from repro.index import RStarTree
from repro.index.metrics import average_occupancy, tree_level_stats


def leaf_overlap(tree):
    """Total pairwise overlap area among leaf MBRs (R* quality metric)."""
    leaves = [n.mbr for n in tree.nodes() if n.is_leaf]
    total = 0.0
    for i, a in enumerate(leaves):
        for b in leaves[i + 1:]:
            total += a.overlap_area(b)
    return total


class TestChooseSubtree:
    def test_point_goes_to_containing_leaf(self):
        """A point inside exactly one leaf MBR must land there (no
        enlargement beats zero enlargement)."""
        tree = RStarTree(capacity=4)
        # Two well-separated groups => two leaves after the first split.
        for i, p in enumerate([(0.1, 0.1), (0.12, 0.12), (0.11, 0.13),
                               (0.9, 0.9), (0.92, 0.92)]):
            tree.insert(i, p[0], p[1])
        tree.insert(99, 0.905, 0.915)  # inside the north-east leaf
        for node in tree.nodes():
            if node.is_leaf and any(e.oid == 99 for e in node.entries):
                assert all(e.x > 0.5 for e in node.entries)

    def test_separated_clusters_get_separate_leaves(self):
        tree = RStarTree(capacity=8)
        rnd = random.Random(0)
        for i in range(60):
            cx = 0.1 if i % 2 == 0 else 0.9
            tree.insert(i, cx + rnd.uniform(-0.02, 0.02),
                        0.5 + rnd.uniform(-0.02, 0.02))
        # No leaf should span both clusters.
        for node in tree.nodes():
            if node.is_leaf and node.entries:
                assert node.mbr.width < 0.5


class TestForcedReinsert:
    def test_reinserted_tree_beats_no_reinsert_on_overlap(self):
        """R* forced reinsertion exists to reduce node overlap; verify
        it does on a skewed insertion order (sorted input)."""
        points = [(i / 500.0, (i * 37 % 500) / 500.0) for i in range(500)]
        with_reinsert = RStarTree(capacity=8, reinsert_ratio=0.3)
        without = RStarTree(capacity=8, reinsert_ratio=0.3)
        # Disable reinsertion in the second tree by marking every level
        # as already reinserted through a tiny subclass-free trick:
        # reinsert_count=1 still reinserts; instead build with
        # min reinsertion by monkeypatching the set each insert.
        for i, p in enumerate(points):
            with_reinsert.insert(i, p[0], p[1])
        for i, p in enumerate(points):
            without._reinserted_levels = {lvl for lvl in range(20)}
            without._in_insert = True
            try:
                without._insert_at_level(
                    __import__("repro.index.entry",
                               fromlist=["LeafEntry"]).LeafEntry(
                                   i, p[0], p[1]), 0)
                without._size += 1
            finally:
                without._in_insert = False
        with_reinsert.check_invariants()
        without.check_invariants()
        assert leaf_overlap(with_reinsert) <= leaf_overlap(without) * 1.05

    def test_occupancy_reasonable_after_inserts(self):
        tree = RStarTree(capacity=10)
        rnd = random.Random(1)
        for i in range(1000):
            tree.insert(i, rnd.random(), rnd.random())
        occ = average_occupancy(tree)
        assert 0.55 < occ <= 1.0  # R* trees typically sit around 70 %

    def test_sorted_insertion_order_still_legal(self):
        """Sorted (worst-case) insertion exercises reinsert+split chains."""
        tree = RStarTree(capacity=6)
        for i in range(500):
            tree.insert(i, i / 500.0, i / 500.0)
        tree.check_invariants()
        assert len(tree) == 500

    def test_level_stats_consistent_after_heavy_churn(self):
        tree = RStarTree(capacity=6)
        rnd = random.Random(2)
        pts = {}
        for i in range(600):
            p = (rnd.random(), rnd.random())
            tree.insert(i, p[0], p[1])
            pts[i] = p
        for i in range(0, 600, 2):
            assert tree.delete(i, *pts[i])
        tree.check_invariants()
        stats = tree_level_stats(tree)
        assert sum(s.num_nodes for s in stats) == tree.num_pages
        assert stats[0].avg_fanout >= tree.min_fill * 0.9
