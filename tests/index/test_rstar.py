"""Tests for R*-tree insertion, deletion and window queries."""

import random

import pytest

from repro.geometry import Rect
from repro.index import RStarTree
from tests.conftest import brute_window

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


def build(points, capacity=8):
    tree = RStarTree(capacity=capacity)
    for i, p in enumerate(points):
        tree.insert(i, p[0], p[1])
    return tree


class TestConstruction:
    def test_default_capacity_matches_paper(self):
        tree = RStarTree()
        assert tree.capacity == 204  # 4096 / 20

    def test_custom_page_geometry(self):
        tree = RStarTree(page_size=1024, entry_size=32)
        assert tree.capacity == 32

    def test_capacity_too_small_raises(self):
        with pytest.raises(ValueError):
            RStarTree(capacity=3)

    def test_bad_min_fill_raises(self):
        with pytest.raises(ValueError):
            RStarTree(capacity=16, min_fill_ratio=0.9)

    def test_empty_tree(self):
        tree = RStarTree(capacity=8)
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.window(UNIT) == []


class TestInsert:
    def test_single_point(self):
        tree = RStarTree(capacity=8)
        tree.insert(0, 0.5, 0.5)
        assert len(tree) == 1
        assert [e.oid for e in tree.window(UNIT)] == [0]

    def test_grows_in_height(self):
        rnd = random.Random(0)
        tree = build([(rnd.random(), rnd.random()) for _ in range(300)],
                     capacity=8)
        assert tree.height >= 3
        tree.check_invariants()

    def test_duplicate_coordinates_allowed(self):
        tree = RStarTree(capacity=4)
        for i in range(50):
            tree.insert(i, 0.5, 0.5)
        tree.check_invariants()
        assert len(tree.window(Rect(0.5, 0.5, 0.5, 0.5))) == 50

    def test_collinear_points(self):
        tree = build([(i / 200.0, 0.5) for i in range(200)], capacity=8)
        tree.check_invariants()
        got = sorted(e.oid for e in tree.window(Rect(0.0, 0.0, 0.25, 1.0)))
        assert got == list(range(51))

    def test_window_matches_brute_force(self):
        rnd = random.Random(3)
        points = [(rnd.random(), rnd.random()) for _ in range(500)]
        tree = build(points, capacity=8)
        for _ in range(30):
            x1, x2 = sorted((rnd.random(), rnd.random()))
            y1, y2 = sorted((rnd.random(), rnd.random()))
            rect = Rect(x1, y1, x2, y2)
            got = sorted(e.oid for e in tree.window(rect))
            assert got == brute_window(points, rect)

    def test_extend_assigns_sequential_ids(self):
        tree = RStarTree(capacity=8)
        tree.extend([(0.1, 0.1), (0.2, 0.2)])
        tree.extend([(0.3, 0.3)])
        assert sorted(e.oid for e in tree.points()) == [0, 1, 2]

    def test_invariants_across_sizes(self):
        rnd = random.Random(17)
        tree = RStarTree(capacity=6)
        for i in range(400):
            tree.insert(i, rnd.random(), rnd.random())
            if i % 97 == 0:
                tree.check_invariants()
        tree.check_invariants()

    def test_clustered_insertion(self):
        rnd = random.Random(5)
        pts = [(0.5 + rnd.gauss(0, 0.01), 0.5 + rnd.gauss(0, 0.01))
               for _ in range(300)]
        tree = build(pts, capacity=8)
        tree.check_invariants()
        assert len(tree) == 300


class TestDelete:
    def test_delete_existing(self):
        tree = build([(0.1, 0.1), (0.9, 0.9)], capacity=4)
        assert tree.delete(0, 0.1, 0.1)
        assert len(tree) == 1
        assert [e.oid for e in tree.window(UNIT)] == [1]

    def test_delete_missing_returns_false(self):
        tree = build([(0.1, 0.1)], capacity=4)
        assert not tree.delete(5, 0.5, 0.5)
        assert len(tree) == 1

    def test_delete_wrong_location_returns_false(self):
        tree = build([(0.1, 0.1)], capacity=4)
        assert not tree.delete(0, 0.9, 0.9)

    def test_delete_all(self):
        rnd = random.Random(11)
        points = [(rnd.random(), rnd.random()) for _ in range(200)]
        tree = build(points, capacity=6)
        for i, p in enumerate(points):
            assert tree.delete(i, p[0], p[1])
        assert len(tree) == 0
        assert tree.window(UNIT) == []

    def test_tree_shrinks_after_mass_delete(self):
        rnd = random.Random(12)
        points = [(rnd.random(), rnd.random()) for _ in range(400)]
        tree = build(points, capacity=6)
        tall = tree.height
        for i in range(380):
            tree.delete(i, points[i][0], points[i][1])
        tree.check_invariants()
        assert tree.height < tall

    def test_interleaved_insert_delete_matches_model(self):
        rnd = random.Random(13)
        tree = RStarTree(capacity=5)
        model = {}
        next_id = 0
        for step in range(800):
            if model and rnd.random() < 0.4:
                oid = rnd.choice(list(model))
                p = model.pop(oid)
                assert tree.delete(oid, p[0], p[1])
            else:
                p = (rnd.random(), rnd.random())
                tree.insert(next_id, p[0], p[1])
                model[next_id] = p
                next_id += 1
            if step % 101 == 0:
                tree.check_invariants()
        rect = Rect(0.2, 0.3, 0.7, 0.9)
        got = sorted(e.oid for e in tree.window(rect))
        want = sorted(o for o, p in model.items() if rect.contains_point(p))
        assert got == want

    def test_delete_frees_pages(self):
        rnd = random.Random(14)
        points = [(rnd.random(), rnd.random()) for _ in range(300)]
        tree = build(points, capacity=6)
        pages_full = tree.num_pages
        for i in range(290):
            tree.delete(i, points[i][0], points[i][1])
        assert tree.num_pages < pages_full


class TestAccessCounting:
    def test_window_counts_root(self):
        tree = build([(0.5, 0.5)], capacity=4)
        tree.disk.reset_stats()
        tree.window(Rect(0.9, 0.9, 1.0, 1.0))
        assert tree.disk.stats.total_node_accesses == 1

    def test_build_not_charged(self):
        rnd = random.Random(2)
        tree = build([(rnd.random(), rnd.random()) for _ in range(100)],
                     capacity=8)
        assert tree.disk.stats.total_node_accesses == 0

    def test_selective_window_visits_fewer_nodes(self):
        rnd = random.Random(2)
        tree = build([(rnd.random(), rnd.random()) for _ in range(500)],
                     capacity=8)
        tree.disk.reset_stats()
        tree.window(Rect(0.0, 0.0, 1.0, 1.0))
        full = tree.disk.stats.total_node_accesses
        tree.disk.reset_stats()
        tree.window(Rect(0.4, 0.4, 0.45, 0.45))
        small = tree.disk.stats.total_node_accesses
        assert small < full
        assert full == tree.num_pages  # full scan touches every node

    def test_attach_lru_buffer_sizing(self):
        rnd = random.Random(2)
        tree = build([(rnd.random(), rnd.random()) for _ in range(500)],
                     capacity=8)
        pages = tree.attach_lru_buffer(0.1)
        assert pages == max(1, round(tree.num_pages * 0.1))
        assert tree.disk.buffer.capacity == pages

    def test_buffer_reduces_page_faults_on_repeat(self):
        rnd = random.Random(2)
        tree = build([(rnd.random(), rnd.random()) for _ in range(500)],
                     capacity=8)
        tree.attach_lru_buffer(1.0)  # buffer as large as the tree
        rect = Rect(0.2, 0.2, 0.6, 0.6)
        tree.window(rect)
        tree.disk.reset_stats()
        tree.window(rect)
        assert tree.disk.stats.total_page_faults == 0
        assert tree.disk.stats.total_node_accesses > 0
