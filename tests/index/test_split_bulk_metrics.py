"""Tests for the R* split, STR bulk loading, and tree metrics."""

import random

import pytest

from repro.geometry import Rect
from repro.index import LeafEntry, RStarTree, bulk_load_str, tree_level_stats
from repro.index.bulk import _chunk_sizes
from repro.index.metrics import average_occupancy
from repro.index.split import rstar_split
from tests.conftest import brute_window

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


class TestSplit:
    def _entries(self, coords):
        return [LeafEntry(i, x, y) for i, (x, y) in enumerate(coords)]

    def test_preserves_all_entries(self):
        rnd = random.Random(0)
        entries = self._entries([(rnd.random(), rnd.random())
                                 for _ in range(17)])
        g1, g2 = rstar_split(entries, min_fill=6)
        assert sorted(e.oid for e in g1 + g2) == list(range(17))

    def test_respects_min_fill(self):
        rnd = random.Random(1)
        for _ in range(20):
            n = rnd.randint(12, 33)
            entries = self._entries([(rnd.random(), rnd.random())
                                     for _ in range(n)])
            g1, g2 = rstar_split(entries, min_fill=6)
            assert len(g1) >= 6 and len(g2) >= 6

    def test_too_few_entries_raises(self):
        entries = self._entries([(0, 0), (1, 1)])
        with pytest.raises(ValueError):
            rstar_split(entries, min_fill=2)

    def test_separates_two_clusters(self):
        left = [(0.1 + i * 1e-3, 0.5) for i in range(8)]
        right = [(0.9 + i * 1e-3, 0.5) for i in range(8)]
        entries = self._entries(left + right)
        g1, g2 = rstar_split(entries, min_fill=4)
        xs1 = {e.x < 0.5 for e in g1}
        xs2 = {e.x < 0.5 for e in g2}
        assert xs1 != xs2 and len(xs1) == 1 and len(xs2) == 1

    def test_splits_along_better_axis(self):
        # Points form a tall strip: the split should be horizontal.
        entries = self._entries([(0.5, i / 20.0) for i in range(20)])
        g1, g2 = rstar_split(entries, min_fill=8)
        ys1 = max(e.y for e in g1)
        ys2 = min(e.y for e in g2)
        assert ys1 <= ys2 or min(e.y for e in g1) >= max(e.y for e in g2)


class TestChunkSizes:
    def test_empty(self):
        assert _chunk_sizes(0, 4, 7, 10) == []

    def test_exact_fill(self):
        assert _chunk_sizes(14, 4, 7, 10) == [7, 7]

    def test_all_chunks_legal(self):
        for m in range(1, 400):
            sizes = _chunk_sizes(m, 81, 142, 204)
            assert sum(sizes) == m
            if len(sizes) > 1:
                assert all(81 <= s <= 204 for s in sizes), (m, sizes)
            else:
                assert sizes[0] <= 204 or m <= 204

    def test_single_small_chunk(self):
        assert _chunk_sizes(3, 4, 7, 10) == [3]


class TestBulkLoad:
    def test_empty(self):
        tree = bulk_load_str([], capacity=8)
        assert len(tree) == 0 and tree.window(UNIT) == []

    def test_single_point(self):
        tree = bulk_load_str([(0.5, 0.5)], capacity=8)
        assert [e.oid for e in tree.window(UNIT)] == [0]

    def test_invariants(self):
        rnd = random.Random(0)
        tree = bulk_load_str([(rnd.random(), rnd.random())
                              for _ in range(5000)], capacity=16)
        tree.check_invariants()

    def test_matches_brute_force(self):
        rnd = random.Random(4)
        points = [(rnd.random(), rnd.random()) for _ in range(800)]
        tree = bulk_load_str(points, capacity=12)
        for _ in range(25):
            x1, x2 = sorted((rnd.random(), rnd.random()))
            y1, y2 = sorted((rnd.random(), rnd.random()))
            rect = Rect(x1, y1, x2, y2)
            assert sorted(e.oid for e in tree.window(rect)) == brute_window(
                points, rect)

    def test_fill_factor_controls_occupancy(self):
        rnd = random.Random(5)
        points = [(rnd.random(), rnd.random()) for _ in range(3000)]
        packed = bulk_load_str(points, capacity=16, fill=1.0)
        loose = bulk_load_str(points, capacity=16, fill=0.5)
        assert packed.num_pages < loose.num_pages

    def test_invalid_fill_raises(self):
        with pytest.raises(ValueError):
            bulk_load_str([(0, 0)], fill=0.0)

    def test_insert_after_bulk_load(self):
        rnd = random.Random(6)
        points = [(rnd.random(), rnd.random()) for _ in range(500)]
        tree = bulk_load_str(points, capacity=8)
        for i in range(100):
            tree.insert(500 + i, rnd.random(), rnd.random())
        tree.check_invariants()
        assert len(tree) == 600

    def test_delete_after_bulk_load(self):
        rnd = random.Random(7)
        points = [(rnd.random(), rnd.random()) for _ in range(500)]
        tree = bulk_load_str(points, capacity=8)
        for i in range(0, 500, 3):
            assert tree.delete(i, points[i][0], points[i][1])
        tree.check_invariants()


class TestMetrics:
    def test_level_stats_shape(self):
        rnd = random.Random(8)
        tree = bulk_load_str([(rnd.random(), rnd.random())
                              for _ in range(2000)], capacity=16)
        stats = tree_level_stats(tree)
        assert [s.level for s in stats] == list(range(tree.height))
        assert stats[-1].num_nodes == 1  # the root
        assert stats[0].num_nodes > stats[-1].num_nodes

    def test_level_node_counts_sum_to_pages(self):
        rnd = random.Random(9)
        tree = bulk_load_str([(rnd.random(), rnd.random())
                              for _ in range(1500)], capacity=12)
        stats = tree_level_stats(tree)
        assert sum(s.num_nodes for s in stats) == tree.num_pages

    def test_average_occupancy_in_range(self):
        rnd = random.Random(10)
        tree = bulk_load_str([(rnd.random(), rnd.random())
                              for _ in range(2000)], capacity=16, fill=0.7)
        occ = average_occupancy(tree)
        assert 0.5 < occ <= 1.0

    def test_leaf_extents_shrink_with_cardinality(self):
        rnd = random.Random(11)
        small = bulk_load_str([(rnd.random(), rnd.random())
                               for _ in range(500)], capacity=16)
        large = bulk_load_str([(rnd.random(), rnd.random())
                               for _ in range(5000)], capacity=16)
        assert (tree_level_stats(large)[0].avg_extent_x
                < tree_level_stats(small)[0].avg_extent_x)
