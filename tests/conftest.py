"""Shared fixtures and brute-force oracles for the test-suite.

Every non-trivial algorithm in the library is tested against a
brute-force reference implemented here from first principles (linear
scans and full half-plane intersections), so the oracles share no code
with the structures under test.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.geometry import ConvexPolygon, Rect, bisector_halfplane
from repro.index import RStarTree, bulk_load_str

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


# ----------------------------------------------------------------------
# datasets / trees
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def uniform_1k():
    """1000 uniform points in the unit square (session-cached)."""
    rng = random.Random(1234)
    return [(rng.random(), rng.random()) for _ in range(1000)]


@pytest.fixture(scope="session")
def small_tree(uniform_1k):
    """A bulk-loaded tree over the 1k uniform points, fanout 16."""
    return bulk_load_str(uniform_1k, capacity=16)


@pytest.fixture(scope="session")
def clustered_300():
    """300 points in three tight clusters (stress for skew handling)."""
    rng = random.Random(99)
    centers = [(0.2, 0.2), (0.8, 0.3), (0.5, 0.85)]
    pts = []
    for i in range(300):
        cx, cy = centers[i % 3]
        pts.append((min(max(cx + rng.gauss(0, 0.03), 0.0), 1.0),
                    min(max(cy + rng.gauss(0, 0.03), 0.0), 1.0)))
    return pts


@pytest.fixture(scope="session")
def clustered_tree(clustered_300):
    return bulk_load_str(clustered_300, capacity=8)


@pytest.fixture()
def rng():
    return random.Random(42)


# ----------------------------------------------------------------------
# brute-force oracles
# ----------------------------------------------------------------------
def brute_knn(points, q, k):
    """k nearest (index, distance) pairs by linear scan."""
    ranked = sorted(
        ((math.dist(p, q), i) for i, p in enumerate(points)))
    return [(i, d) for d, i in ranked[:k]]


def brute_window(points, rect: Rect):
    """Object ids inside the closed rectangle, by linear scan."""
    return sorted(i for i, p in enumerate(points) if rect.contains_point(p))


def brute_order_k_cell(points, q, k, universe: Rect) -> ConvexPolygon:
    """The order-k Voronoi cell containing ``q``: full O(n^2) clipping."""
    ranked = sorted(range(len(points)), key=lambda i: math.dist(points[i], q))
    inside, outside = ranked[:k], ranked[k:]
    poly = ConvexPolygon.from_rect(universe)
    for o in inside:
        for a in outside:
            poly = poly.clip(bisector_halfplane(points[o], points[a]),
                             eps=1e-12)
            if poly.is_empty:
                return poly
    return poly


def brute_knn_set(points, q, k):
    """The set of indices of the k nearest points."""
    return {i for i, _ in brute_knn(points, q, k)}
