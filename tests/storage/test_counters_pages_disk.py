"""Tests for access counters, the page store, and the disk simulator."""

import pytest

from repro.storage import AccessStats, DiskSimulator, PageStore


class TestAccessStats:
    def test_record_access_only(self):
        s = AccessStats()
        s.record("nn", fault=False)
        assert s.total_node_accesses == 1 and s.total_page_faults == 0

    def test_record_fault(self):
        s = AccessStats()
        s.record("nn", fault=True)
        assert s.total_page_faults == 1

    def test_phases_separated(self):
        s = AccessStats()
        s.record("nn", True)
        s.record("tpnn", False)
        s.record("tpnn", True)
        assert s.node_accesses_by_phase() == {"nn": 1, "tpnn": 2}
        assert s.page_faults_by_phase() == {"nn": 1, "tpnn": 1}

    def test_reset(self):
        s = AccessStats()
        s.record("x", True)
        s.reset()
        assert s.total_node_accesses == 0 and s.total_page_faults == 0

    def test_merge(self):
        a, b = AccessStats(), AccessStats()
        a.record("x", True)
        b.record("x", False)
        b.record("y", True)
        a.merge(b)
        assert a.node_accesses_by_phase() == {"x": 2, "y": 1}
        assert a.total_page_faults == 2


class TestPageStore:
    def test_allocate_unique(self):
        store = PageStore()
        ids = {store.allocate() for _ in range(100)}
        assert len(ids) == 100

    def test_num_pages(self):
        store = PageStore()
        a = store.allocate()
        store.allocate()
        assert store.num_pages == 2
        store.free(a)
        assert store.num_pages == 1

    def test_free_unknown_raises(self):
        with pytest.raises(KeyError):
            PageStore().free(7)

    def test_double_free_raises(self):
        store = PageStore()
        a = store.allocate()
        store.free(a)
        with pytest.raises(KeyError):
            store.free(a)

    def test_ids_not_recycled(self):
        store = PageStore()
        a = store.allocate()
        store.free(a)
        assert store.allocate() != a

    def test_is_live(self):
        store = PageStore()
        a = store.allocate()
        assert store.is_live(a)
        store.free(a)
        assert not store.is_live(a)


class TestDiskSimulator:
    def test_unbuffered_every_access_faults(self):
        disk = DiskSimulator()
        disk.read(1)
        disk.read(1)
        assert disk.stats.total_page_faults == 2

    def test_buffered_second_access_hits(self):
        disk = DiskSimulator(buffer_pages=4)
        disk.read(1)
        disk.read(1)
        assert disk.stats.total_node_accesses == 2
        assert disk.stats.total_page_faults == 1

    def test_phase_attribution(self):
        disk = DiskSimulator()
        with disk.phase("result"):
            disk.read(1)
        with disk.phase("influence"):
            disk.read(2)
            disk.read(3)
        assert disk.stats.node_accesses_by_phase() == {
            "result": 1, "influence": 2}

    def test_phase_nesting_restores(self):
        disk = DiskSimulator()
        with disk.phase("outer"):
            with disk.phase("inner"):
                disk.read(1)
            disk.read(2)
        disk.read(3)
        assert disk.stats.node_accesses_by_phase() == {
            "inner": 1, "outer": 1, "default": 1}

    def test_phase_restored_on_exception(self):
        disk = DiskSimulator()
        with pytest.raises(RuntimeError):
            with disk.phase("boom"):
                raise RuntimeError
        disk.read(1)
        assert disk.stats.node_accesses_by_phase() == {"default": 1}

    def test_set_buffer_resizes(self):
        disk = DiskSimulator()
        disk.set_buffer(2)
        disk.read(1)
        disk.read(1)
        assert disk.stats.total_page_faults == 1
        disk.set_buffer(0)
        disk.read(1)
        assert disk.stats.total_page_faults == 2

    def test_reset_stats_keeps_buffer_warm(self):
        disk = DiskSimulator(buffer_pages=2)
        disk.read(1)
        disk.reset_stats()
        disk.read(1)
        assert disk.stats.total_page_faults == 0

    def test_cold_restart_empties_buffer(self):
        disk = DiskSimulator(buffer_pages=2)
        disk.read(1)
        disk.cold_restart()
        disk.read(1)
        assert disk.stats.total_page_faults == 1

    def test_invalidate(self):
        disk = DiskSimulator(buffer_pages=2)
        disk.read(1)
        disk.invalidate(1)
        disk.read(1)
        assert disk.stats.total_page_faults == 2
