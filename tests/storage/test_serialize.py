"""Tests for R*-tree serialization."""

import random
import struct

import pytest

from repro.geometry import Rect
from repro.index import RStarTree, bulk_load_str
from repro.storage import DiskSimulator
from repro.storage.serialize import load_tree, page_size_for, save_tree


@pytest.fixture()
def tree_and_points(rng):
    points = [(rng.random(), rng.random()) for _ in range(700)]
    return bulk_load_str(points, capacity=12), points


class TestRoundTrip:
    def test_queries_identical(self, tree_and_points, tmp_path, rng):
        tree, points = tree_and_points
        path = str(tmp_path / "tree.rt")
        save_tree(tree, path)
        loaded = load_tree(path)
        loaded.check_invariants()
        assert len(loaded) == len(tree)
        assert loaded.height == tree.height
        for _ in range(20):
            x1, x2 = sorted((rng.random(), rng.random()))
            y1, y2 = sorted((rng.random(), rng.random()))
            rect = Rect(x1, y1, x2, y2)
            assert (sorted(e.oid for e in loaded.window(rect))
                    == sorted(e.oid for e in tree.window(rect)))

    def test_loaded_tree_is_mutable(self, tree_and_points, tmp_path):
        tree, points = tree_and_points
        path = str(tmp_path / "tree.rt")
        save_tree(tree, path)
        loaded = load_tree(path)
        loaded.insert(9999, 0.123, 0.456)
        assert loaded.delete(9999, 0.123, 0.456)
        loaded.check_invariants()

    def test_empty_tree(self, tmp_path):
        tree = RStarTree(capacity=8)
        path = str(tmp_path / "empty.rt")
        save_tree(tree, path)
        loaded = load_tree(path)
        assert len(loaded) == 0
        assert loaded.window(Rect(0, 0, 1, 1)) == []

    def test_single_point(self, tmp_path):
        tree = RStarTree(capacity=8)
        tree.insert(42, 0.5, 0.25)
        path = str(tmp_path / "one.rt")
        save_tree(tree, path)
        loaded = load_tree(path)
        [entry] = list(loaded.points())
        assert (entry.oid, entry.x, entry.y) == (42, 0.5, 0.25)

    def test_insertion_built_tree(self, tmp_path, rng):
        tree = RStarTree(capacity=6)
        for i in range(400):
            tree.insert(i, rng.random(), rng.random())
        path = str(tmp_path / "ins.rt")
        save_tree(tree, path)
        loaded = load_tree(path)
        loaded.check_invariants()
        assert sorted(e.oid for e in loaded.points()) == list(range(400))

    def test_disk_accounting_attached(self, tree_and_points, tmp_path):
        tree, _ = tree_and_points
        path = str(tmp_path / "tree.rt")
        save_tree(tree, path)
        disk = DiskSimulator()
        loaded = load_tree(path, disk=disk)
        loaded.window(Rect(0.2, 0.2, 0.4, 0.4))
        assert disk.stats.total_node_accesses > 0

    def test_reported_size_matches_file(self, tree_and_points, tmp_path):
        import os
        tree, _ = tree_and_points
        path = str(tmp_path / "tree.rt")
        written = save_tree(tree, path)
        assert os.path.getsize(path) == written


class TestFormat:
    def test_page_size_is_512_multiple(self):
        for capacity in (4, 16, 113, 204, 1000):
            ps = page_size_for(capacity)
            assert ps % 512 == 0
            assert ps >= capacity * 36

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "bogus.rt")
        with open(path, "wb") as fh:
            fh.write(b"NOPE" + b"\0" * 64)
        with pytest.raises(ValueError, match="not a serialized"):
            load_tree(path)

    def test_truncated_file_rejected(self, tree_and_points, tmp_path):
        tree, _ = tree_and_points
        path = str(tmp_path / "trunc.rt")
        save_tree(tree, path)
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[:len(data) // 2])
        with pytest.raises(ValueError, match="truncated"):
            load_tree(path)

    def test_bad_version_rejected(self, tree_and_points, tmp_path):
        tree, _ = tree_and_points
        path = str(tmp_path / "ver.rt")
        save_tree(tree, path)
        with open(path, "r+b") as fh:
            fh.seek(4)
            fh.write(struct.pack("<H", 99))
        with pytest.raises(ValueError, match="version"):
            load_tree(path)
