"""The faulty disk: deterministic fault plans over the simulated disk."""

from __future__ import annotations

import pytest

from repro.index import bulk_load_str
from repro.storage import (
    FaultPlan,
    FaultyDiskSimulator,
    PageReadError,
    inject_faults,
)


def _drive(disk, n=200, phase=None):
    """Attempt ``n`` reads; return the global read indices that failed."""
    failed = []
    for i in range(n):
        try:
            if phase is None:
                disk.read(i % 7)
            else:
                with disk.phase(phase):
                    disk.read(i % 7)
        except PageReadError as exc:
            assert exc.read_index == disk.reads_attempted
            failed.append(exc.read_index)
    return failed


def test_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan(read_failure_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(phase_failure_rates={"nn": -0.1})
    with pytest.raises(ValueError):
        FaultPlan(latency_mean_s=-1.0)
    with pytest.raises(ValueError):
        FaultPlan(latency_rate=2.0)


def test_clean_plan_behaves_like_plain_disk():
    disk = FaultyDiskSimulator(FaultPlan())
    assert _drive(disk) == []
    assert disk.stats.total_node_accesses == 200
    assert disk.snapshot()["read_failures"] == 0


def test_same_seed_same_failures():
    plan = FaultPlan(seed=42, read_failure_rate=0.2)
    first = _drive(FaultyDiskSimulator(plan))
    second = _drive(FaultyDiskSimulator(plan))
    assert first == second
    assert first  # 200 reads at 20%: failures certainly occurred
    other = _drive(FaultyDiskSimulator(FaultPlan(seed=43,
                                                 read_failure_rate=0.2)))
    assert first != other


def test_pinned_reads_always_fail():
    disk = FaultyDiskSimulator(FaultPlan(fail_reads=(3, 7, 8)))
    assert _drive(disk, n=20) == [3, 7, 8]
    assert disk.injected["read_failures"] == 3


def test_per_phase_rates_override_global():
    plan = FaultPlan(seed=1, read_failure_rate=0.0,
                     phase_failure_rates={"tpnn": 1.0})
    disk = FaultyDiskSimulator(plan)
    assert _drive(disk, n=50, phase="nn") == []
    assert _drive(disk, n=10, phase="tpnn") == list(range(51, 61))
    assert plan.failure_rate("tpnn") == 1.0
    assert plan.failure_rate("result") == 0.0


def test_failed_read_is_charged_as_fault():
    disk = FaultyDiskSimulator(FaultPlan(fail_reads=(1,)))
    with pytest.raises(PageReadError):
        with disk.phase("nn"):
            disk.read(0)
    assert disk.stats.node_accesses["nn"] == 1
    assert disk.stats.page_faults["nn"] == 1


def test_latency_injection_uses_injected_sleep():
    slept = []
    disk = FaultyDiskSimulator(
        FaultPlan(seed=5, latency_mean_s=0.01, latency_rate=1.0),
        sleep=slept.append)
    _drive(disk, n=30)
    assert len(slept) == 30
    assert all(s >= 0.0 for s in slept)
    assert disk.injected["latency_events"] == 30
    assert disk.injected["latency_seconds"] == pytest.approx(sum(slept))
    # Seeded: a second disk injects the identical delays.
    slept2 = []
    disk2 = FaultyDiskSimulator(
        FaultPlan(seed=5, latency_mean_s=0.01, latency_rate=1.0),
        sleep=slept2.append)
    _drive(disk2, n=30)
    assert slept2 == slept


def test_stuck_buffer_window_bypasses_pool():
    plan = FaultPlan(stuck_buffer_at=11, stuck_buffer_reads=5)
    disk = FaultyDiskSimulator(plan, buffer_pages=4)
    for i in range(20):
        disk.read(0)  # same page: buffered after the first read
    # Reads 2..10 and 16..20 hit the pool; 1 cold-misses; 11..15 are
    # stuck (charged as faults, pool untouched).
    assert disk.injected["stuck_reads"] == 5
    assert disk.stats.page_faults["default"] == 1 + 5
    assert disk.stats.node_accesses["default"] == 20


def test_inject_faults_swaps_and_preserves_state(uniform_1k):
    tree = bulk_load_str(uniform_1k, capacity=16)
    tree.attach_lru_buffer(0.5)
    with tree.disk.phase("nn"):
        tree.disk.read(1)
    before = tree.disk.stats.total_node_accesses
    old_disk = tree.disk
    old_buffer = tree.disk.buffer
    faulty = inject_faults(tree, FaultPlan(seed=0))
    assert tree.disk is faulty
    assert isinstance(faulty, FaultyDiskSimulator)
    assert faulty.replaced is old_disk
    # Stats and buffer pool continue across the swap.
    assert faulty.stats is old_disk.stats
    assert faulty.buffer is old_buffer
    assert faulty.stats.total_node_accesses == before
    tree.disk.read(1)
    assert faulty.stats.total_node_accesses == before + 1


def test_injected_tree_still_answers_queries(uniform_1k):
    from repro.queries import nearest_neighbors

    tree = bulk_load_str(uniform_1k, capacity=16)
    expected = [e.entry.oid for e in nearest_neighbors(tree, (0.5, 0.5), 5)]
    inject_faults(tree, FaultPlan(seed=9))  # no failures configured
    got = [e.entry.oid for e in nearest_neighbors(tree, (0.5, 0.5), 5)]
    assert got == expected
