"""Property-based round-trip tests for tree serialization."""

import random

from hypothesis import given, settings, strategies as st

from repro.geometry import Rect
from repro.index import RStarTree, bulk_load_str
from repro.storage.serialize import load_tree, save_tree


@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=4, max_value=32),
       st.booleans())
@settings(deadline=None, max_examples=25)
def test_round_trip_random_trees(tmp_path_factory, seed, capacity, use_bulk):
    rnd = random.Random(seed)
    n = rnd.randint(0, 250)
    points = [(rnd.uniform(-5, 5), rnd.uniform(-5, 5)) for _ in range(n)]
    if use_bulk:
        tree = bulk_load_str(points, capacity=capacity)
    else:
        tree = RStarTree(capacity=capacity)
        for i, p in enumerate(points):
            tree.insert(i, p[0], p[1])
    path = str(tmp_path_factory.mktemp("ser") / "t.rt")
    save_tree(tree, path)
    loaded = load_tree(path)
    loaded.check_invariants()
    assert len(loaded) == len(tree)
    assert loaded.capacity == tree.capacity
    # Exact same stored points.
    assert (sorted((e.oid, e.x, e.y) for e in loaded.points())
            == sorted((e.oid, e.x, e.y) for e in tree.points()))
    # And the same answers.
    for _ in range(5):
        x1, x2 = sorted((rnd.uniform(-5, 5), rnd.uniform(-5, 5)))
        y1, y2 = sorted((rnd.uniform(-5, 5), rnd.uniform(-5, 5)))
        rect = Rect(x1, y1, x2, y2)
        assert (sorted(e.oid for e in loaded.window(rect))
                == sorted(e.oid for e in tree.window(rect)))
