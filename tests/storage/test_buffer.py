"""Tests for the LRU buffer pool."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage import LRUBufferPool


class TestLRUBufferPool:
    def test_zero_capacity_always_faults(self):
        pool = LRUBufferPool(0)
        assert pool.access(1) and pool.access(1) and pool.access(1)
        assert pool.misses == 3 and pool.hits == 0

    def test_negative_capacity_raises(self):
        with pytest.raises(ValueError):
            LRUBufferPool(-1)

    def test_hit_after_load(self):
        pool = LRUBufferPool(2)
        assert pool.access(1) is True   # cold miss
        assert pool.access(1) is False  # hit

    def test_eviction_order_is_lru(self):
        pool = LRUBufferPool(2)
        pool.access(1)
        pool.access(2)
        pool.access(1)      # 1 becomes most recent
        pool.access(3)      # evicts 2
        assert pool.access(2) is True
        assert pool.access(1) is True  # 1 was evicted by reloading 2

    def test_capacity_respected(self):
        pool = LRUBufferPool(3)
        for i in range(10):
            pool.access(i)
        assert len(pool) == 3

    def test_invalidate(self):
        pool = LRUBufferPool(2)
        pool.access(1)
        pool.invalidate(1)
        assert pool.access(1) is True

    def test_invalidate_absent_is_noop(self):
        LRUBufferPool(2).invalidate(42)  # must not raise

    def test_clear_keeps_counters(self):
        pool = LRUBufferPool(2)
        pool.access(1)
        pool.access(1)
        pool.clear()
        assert pool.hits == 1 and pool.misses == 1
        assert pool.access(1) is True

    def test_hit_ratio(self):
        pool = LRUBufferPool(4)
        pool.access(1)
        pool.access(1)
        pool.access(1)
        pool.access(2)
        assert pool.hit_ratio == 0.5

    def test_hit_ratio_empty(self):
        assert LRUBufferPool(2).hit_ratio == 0.0

    def test_single_page_buffer(self):
        pool = LRUBufferPool(1)
        assert pool.access(1) is True
        assert pool.access(1) is False
        assert pool.access(2) is True
        assert pool.access(1) is True

    @given(st.integers(min_value=1, max_value=8),
           st.lists(st.integers(min_value=0, max_value=15), max_size=200))
    @settings(deadline=None)
    def test_matches_reference_lru(self, capacity, accesses):
        """Model-based check against an explicit list implementation."""
        pool = LRUBufferPool(capacity)
        model = []
        for page in accesses:
            expected_fault = page not in model
            assert pool.access(page) is expected_fault
            if page in model:
                model.remove(page)
            model.append(page)
            if len(model) > capacity:
                model.pop(0)
        assert len(pool) == len(model)
