"""Tests for the analytical models of Section 5 against measurements."""

import math
import random

import pytest

from repro.geometry import Rect
from repro.index import bulk_load_str, tree_level_stats
from repro.core import compute_nn_validity, compute_window_validity
from repro.analysis import (
    MinskewHistogram,
    contained_node_accesses,
    expected_inner_extents,
    expected_nn_edges,
    expected_nn_validity_area,
    expected_nn_validity_area_hist,
    expected_window_validity_area,
    expected_window_validity_area_hist,
    location_window_query_node_accesses,
    marginal_query_node_accesses,
    window_query_node_accesses,
)
from repro.datasets import uniform_points

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


class TestNNModel:
    def test_k1_exact_expectation(self):
        # Order-1 Voronoi cells tile the universe: E[area] = A/N exactly.
        assert expected_nn_validity_area(1000, 1, 1.0) == 1e-3

    def test_scaling_in_k(self):
        a1 = expected_nn_validity_area(1000, 1, 1.0)
        a10 = expected_nn_validity_area(1000, 10, 1.0)
        assert math.isclose(a1 / a10, 19.0)

    def test_k_ge_n_is_universe(self):
        assert expected_nn_validity_area(5, 5, 2.0) == 2.0
        assert expected_nn_validity_area(5, 9, 2.0) == 2.0

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            expected_nn_validity_area(0, 1, 1.0)
        with pytest.raises(ValueError):
            expected_nn_validity_area(10, 0, 1.0)
        with pytest.raises(ValueError):
            expected_nn_edges(0)

    def test_matches_measurement_uniform(self):
        """Estimated vs measured (paper Fig 22).

        A random query point lands in large cells more often than in
        small ones (size-biased sampling), so the measured mean sits a
        modest constant factor above the cell-average estimate — ~1.3x
        for k=1 and growing slowly with k.  The paper's log-scale plots
        absorb this factor; the assertions here bound it explicitly.
        """
        pts = uniform_points(5000, seed=0)
        tree = bulk_load_str(pts, capacity=32)
        rnd = random.Random(1)
        for k, hi in ((1, 2.0), (5, 6.0)):
            areas = []
            for _ in range(40):
                q = (rnd.random(), rnd.random())
                res = compute_nn_validity(tree, q, k=k, universe=UNIT)
                areas.append(res.region.area())
            measured = sum(areas) / len(areas)
            estimated = expected_nn_validity_area(5000, k, 1.0)
            assert 0.8 < measured / estimated < hi

    def test_hist_variant_uniform_agrees_with_closed_form(self):
        pts = uniform_points(10_000, seed=2)
        hist = MinskewHistogram.build(pts, UNIT, initial_cells=2500,
                                      num_buckets=100)
        hist_est = expected_nn_validity_area_hist(hist, (0.5, 0.5), 1)
        closed = expected_nn_validity_area(10_000, 1, 1.0)
        assert 0.4 < hist_est / closed < 2.5

    def test_expected_edges_is_six(self):
        assert expected_nn_edges(1) == 6.0
        assert expected_nn_edges(50) == 6.0


class TestWindowModel:
    def test_decreases_with_n(self):
        a = expected_window_validity_area(10_000, 0.03, 0.03, 1.0)
        b = expected_window_validity_area(100_000, 0.03, 0.03, 1.0)
        assert b < a

    def test_decreases_with_window_size(self):
        a = expected_window_validity_area(10_000, 0.01, 0.01, 1.0)
        b = expected_window_validity_area(10_000, 0.1, 0.1, 1.0)
        assert b < a

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            expected_window_validity_area(0, 0.1, 0.1, 1.0)
        with pytest.raises(ValueError):
            expected_window_validity_area(10, 0.0, 0.1, 1.0)

    def test_matches_measurement_uniform(self):
        """Estimated vs measured (paper Fig 29)."""
        pts = uniform_points(10_000, seed=3)
        tree = bulk_load_str(pts, capacity=32)
        rnd = random.Random(4)
        side = math.sqrt(0.001)  # qs = 0.1% of the universe
        areas = []
        for _ in range(60):
            f = (rnd.random(), rnd.random())
            res = compute_window_validity(tree, f, side, side, universe=UNIT)
            areas.append(res.exact_region.area())
        measured = sum(areas) / len(areas)
        estimated = expected_window_validity_area(10_000, side, side, 1.0)
        assert 0.3 < measured / estimated < 3.0

    def test_hist_variant_uniform(self):
        pts = uniform_points(10_000, seed=5)
        hist = MinskewHistogram.build(pts, UNIT, initial_cells=2500,
                                      num_buckets=100)
        window = Rect.around((0.5, 0.5), 0.03, 0.03)
        hist_est = expected_window_validity_area_hist(hist, window)
        closed = expected_window_validity_area(10_000, 0.03, 0.03, 1.0)
        assert 0.3 < hist_est / closed < 3.0

    def test_inner_extents(self):
        dx, dy = expected_inner_extents(10_000.0, 0.02, 0.05)
        assert math.isclose(dx, 1.0 / (10_000 * 0.05))
        assert math.isclose(dy, 1.0 / (10_000 * 0.02))

    def test_inner_extents_bad_density(self):
        with pytest.raises(ValueError):
            expected_inner_extents(0.0, 0.1, 0.1)

    def test_inner_extents_match_measurement(self):
        pts = uniform_points(20_000, seed=6)
        tree = bulk_load_str(pts, capacity=32)
        rnd = random.Random(7)
        side = 0.05
        widths = []
        for _ in range(60):
            f = (rnd.uniform(0.2, 0.8), rnd.uniform(0.2, 0.8))
            res = compute_window_validity(tree, f, side, side, universe=UNIT)
            widths.append(res.inner_region.width)
        measured = sum(widths) / len(widths)
        dx, _ = expected_inner_extents(20_000.0, side, side)
        assert 0.3 < measured / (2 * dx) < 3.0


class TestCostModel:
    @pytest.fixture(scope="class")
    def tree(self):
        return bulk_load_str(uniform_points(20_000, seed=8), capacity=32)

    def test_window_na_model_close_to_measured(self, tree):
        levels = tree_level_stats(tree)
        rnd = random.Random(9)
        side = 0.1
        measured = []
        for _ in range(30):
            f = (rnd.uniform(0.1, 0.9), rnd.uniform(0.1, 0.9))
            tree.disk.reset_stats()
            tree.window(Rect.around(f, side, side))
            measured.append(tree.disk.stats.total_node_accesses)
        model = window_query_node_accesses(levels, side, side, 1.0)
        avg = sum(measured) / len(measured)
        assert 0.5 < avg / model < 2.0

    def test_contained_fewer_than_intersecting(self, tree):
        levels = tree_level_stats(tree)
        na = window_query_node_accesses(levels, 0.2, 0.2, 1.0)
        cont = contained_node_accesses(levels, 0.2, 0.2, 1.0)
        assert 0.0 <= cont < na

    def test_marginal_cheaper_than_two_full_queries(self, tree):
        levels = tree_level_stats(tree)
        na = window_query_node_accesses(levels, 0.1, 0.1, 1.0)
        marginal = marginal_query_node_accesses(levels, 0.1, 0.1,
                                                0.12, 0.12, 1.0)
        total = location_window_query_node_accesses(levels, 0.1, 0.1,
                                                    0.12, 0.12, 1.0)
        assert math.isclose(total, na + marginal)
        bigger = window_query_node_accesses(levels, 0.12, 0.12, 1.0)
        assert marginal <= bigger

    def test_invalid_args_raise(self, tree):
        levels = tree_level_stats(tree)
        with pytest.raises(ValueError):
            window_query_node_accesses(levels, -0.1, 0.1, 1.0)
        with pytest.raises(ValueError):
            window_query_node_accesses(levels, 0.1, 0.1, 0.0)

    def test_empty_levels(self):
        assert window_query_node_accesses([], 0.1, 0.1, 1.0) == 1.0
