"""Tests for the Minskew histogram."""

import math
import random

import numpy as np
import pytest

from repro.geometry import Rect
from repro.analysis import MinskewHistogram
from repro.datasets import uniform_points, make_greece_like

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


class TestConstruction:
    def test_bucket_count_respected(self):
        pts = uniform_points(2000, seed=0)
        hist = MinskewHistogram.build(pts, UNIT, initial_cells=400,
                                      num_buckets=50)
        assert len(hist) <= 50

    def test_total_count_preserved(self):
        pts = uniform_points(1234, seed=1)
        hist = MinskewHistogram.build(pts, UNIT, initial_cells=400,
                                      num_buckets=30)
        assert math.isclose(sum(b.count for b in hist.buckets), 1234)
        assert hist.total == 1234

    def test_buckets_tile_universe(self):
        pts = uniform_points(500, seed=2)
        hist = MinskewHistogram.build(pts, UNIT, initial_cells=100,
                                      num_buckets=20)
        assert math.isclose(sum(b.area for b in hist.buckets), 1.0,
                            rel_tol=1e-9)
        # No two buckets overlap.
        buckets = hist.buckets
        for i, a in enumerate(buckets):
            for b in buckets[i + 1:]:
                assert a.rect.overlap_area(b.rect) < 1e-12

    def test_uniform_data_one_bucket_is_enough(self):
        """On perfectly uniform grids there is no skew to reduce."""
        grid = np.full((10, 10), 5.0)
        hist = MinskewHistogram.from_grid(grid, UNIT, num_buckets=50)
        assert len(hist) == 1

    def test_skewed_data_splits_where_the_skew_is(self):
        grid = np.zeros((10, 10))
        grid[0, 0] = 1000.0  # one hot cell
        hist = MinskewHistogram.from_grid(grid, UNIT, num_buckets=10)
        assert len(hist) > 1
        hot = hist.bucket_at((0.05, 0.05))
        assert hot.count == 1000.0

    def test_points_on_universe_edge_binned(self):
        hist = MinskewHistogram.build([(1.0, 1.0), (0.0, 0.0)], UNIT,
                                      initial_cells=100, num_buckets=4)
        assert hist.total == 2


class TestEstimation:
    def test_estimate_whole_universe(self):
        pts = uniform_points(3000, seed=3)
        hist = MinskewHistogram.build(pts, UNIT, initial_cells=400,
                                      num_buckets=40)
        assert math.isclose(hist.estimate_count(UNIT), 3000, rel_tol=1e-9)

    def test_estimate_uniform_subwindow(self):
        pts = uniform_points(20_000, seed=4)
        hist = MinskewHistogram.build(pts, UNIT, initial_cells=2500,
                                      num_buckets=100)
        got = hist.estimate_count(Rect(0.1, 0.1, 0.6, 0.6))
        assert abs(got - 20_000 * 0.25) / (20_000 * 0.25) < 0.1

    def test_estimate_skewed_window(self):
        pts = make_greece_like(n=5000, seed=7)
        from repro.datasets import GR_UNIVERSE
        hist = MinskewHistogram.build(pts, GR_UNIVERSE, initial_cells=2500,
                                      num_buckets=200)
        rect = Rect(0, 0, GR_UNIVERSE.xmax / 2, GR_UNIVERSE.ymax / 2)
        truth = sum(1 for p in pts if rect.contains_point(p))
        assert abs(hist.estimate_count(rect) - truth) / max(truth, 1) < 0.15

    def test_bucket_at(self):
        pts = uniform_points(100, seed=5)
        hist = MinskewHistogram.build(pts, UNIT, initial_cells=100,
                                      num_buckets=10)
        b = hist.bucket_at((0.5, 0.5))
        assert b is not None and b.rect.contains_point((0.5, 0.5))
        assert hist.bucket_at((5.0, 5.0)) is None

    def test_local_density_nn_uniform(self):
        pts = uniform_points(10_000, seed=6)
        hist = MinskewHistogram.build(pts, UNIT, initial_cells=2500,
                                      num_buckets=100)
        density = hist.local_density_nn((0.5, 0.5), min_points=50)
        assert abs(density - 10_000) / 10_000 < 0.5

    def test_local_density_skew_sensitive(self):
        # Dense left half, sparse right half.
        rnd = random.Random(0)
        pts = ([(rnd.random() * 0.5, rnd.random()) for _ in range(9000)]
               + [(0.5 + rnd.random() * 0.5, rnd.random())
                  for _ in range(1000)])
        hist = MinskewHistogram.build(pts, UNIT, initial_cells=2500,
                                      num_buckets=100)
        dense = hist.local_density_nn((0.25, 0.5), min_points=100)
        sparse = hist.local_density_nn((0.75, 0.5), min_points=100)
        assert dense > 3 * sparse

    def test_boundary_density(self):
        pts = uniform_points(10_000, seed=8)
        hist = MinskewHistogram.build(pts, UNIT, initial_cells=2500,
                                      num_buckets=100)
        rho = hist.boundary_density(Rect(0.4, 0.4, 0.6, 0.6))
        assert abs(rho - 10_000) / 10_000 < 0.5

    def test_boundary_density_degenerate_window(self):
        pts = uniform_points(100, seed=9)
        hist = MinskewHistogram.build(pts, UNIT, initial_cells=100,
                                      num_buckets=10)
        # A window covering everything: falls back to global density.
        assert hist.boundary_density(Rect(-1, -1, 2, 2)) == pytest.approx(100.0)
