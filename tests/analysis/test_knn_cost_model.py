"""Tests for the kNN node-access model."""

import random

import pytest

from repro.analysis import knn_query_node_accesses
from repro.datasets import uniform_points
from repro.index import bulk_load_str, tree_level_stats
from repro.queries import nearest_neighbors


class TestKNNCostModel:
    @pytest.fixture(scope="class")
    def setup(self):
        n = 20_000
        tree = bulk_load_str(uniform_points(n, seed=15), capacity=32)
        return n, tree, tree_level_stats(tree)

    def test_model_tracks_measurement(self, setup):
        n, tree, levels = setup
        rnd = random.Random(1)
        for k in (1, 10, 100):
            measured = []
            for _ in range(30):
                q = (rnd.uniform(0.1, 0.9), rnd.uniform(0.1, 0.9))
                tree.disk.reset_stats()
                nearest_neighbors(tree, q, k=k)
                measured.append(tree.disk.stats.total_node_accesses)
            avg = sum(measured) / len(measured)
            model = knn_query_node_accesses(levels, k, n, 1.0)
            assert 0.4 < avg / model < 2.5, (k, avg, model)

    def test_monotone_in_k(self, setup):
        n, _, levels = setup
        costs = [knn_query_node_accesses(levels, k, n, 1.0)
                 for k in (1, 10, 100, 1000)]
        assert all(a <= b for a, b in zip(costs, costs[1:]))

    def test_invalid_args(self, setup):
        _, _, levels = setup
        with pytest.raises(ValueError):
            knn_query_node_accesses(levels, 0, 100, 1.0)
        with pytest.raises(ValueError):
            knn_query_node_accesses(levels, 1, 0, 1.0)
        with pytest.raises(ValueError):
            knn_query_node_accesses(levels, 1, 100, 0.0)

    def test_empty_levels(self):
        assert knn_query_node_accesses([], 1, 100, 1.0) == 1.0
