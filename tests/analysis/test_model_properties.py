"""Property-based tests for the analytical models and the histogram."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect
from repro.analysis import (
    MinskewHistogram,
    expected_nn_validity_area,
    expected_window_validity_area,
)

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


class TestNNModelProperties:
    @given(st.integers(min_value=2, max_value=10**7),
           st.integers(min_value=1, max_value=100))
    def test_positive_and_bounded(self, n, k):
        a = expected_nn_validity_area(n, k, 1.0)
        assert 0.0 < a <= 1.0

    @given(st.integers(min_value=1000, max_value=10**6))
    def test_monotone_decreasing_in_n(self, n):
        assert (expected_nn_validity_area(2 * n, 1, 1.0)
                < expected_nn_validity_area(n, 1, 1.0))

    @given(st.integers(min_value=1, max_value=50))
    def test_monotone_decreasing_in_k(self, k):
        n = 10**6
        assert (expected_nn_validity_area(n, k + 1, 1.0)
                <= expected_nn_validity_area(n, k, 1.0))

    @given(st.floats(min_value=0.1, max_value=100.0))
    def test_scales_with_universe_area(self, area):
        base = expected_nn_validity_area(1000, 1, 1.0)
        assert math.isclose(expected_nn_validity_area(1000, 1, area),
                            base * area, rel_tol=1e-12)


class TestWindowModelProperties:
    @given(st.integers(min_value=100, max_value=200_000),
           st.floats(min_value=0.005, max_value=0.2))
    @settings(deadline=None, max_examples=25)
    def test_positive_and_below_universe(self, n, side):
        a = expected_window_validity_area(n, side, side, 1.0)
        # Sparse datasets clamp to the whole universe.
        assert 0.0 < a <= 1.0

    @given(st.floats(min_value=0.005, max_value=0.1))
    @settings(deadline=None, max_examples=15)
    def test_monotone_in_n(self, side):
        small = expected_window_validity_area(5_000, side, side, 1.0)
        large = expected_window_validity_area(50_000, side, side, 1.0)
        assert large < small

    @settings(deadline=None, max_examples=15)
    @given(st.integers(min_value=5_000, max_value=100_000))
    def test_aspect_ratio_symmetry(self, n):
        """A w x h window and an h x w window have the same expected
        validity area (the model must be axis-symmetric)."""
        a = expected_window_validity_area(n, 0.02, 0.08, 1.0)
        b = expected_window_validity_area(n, 0.08, 0.02, 1.0)
        assert math.isclose(a, b, rel_tol=1e-6)

    def test_scaling_like_inverse_density_squared(self):
        """Doubling density roughly quarters the area (dist ~ 1/rho)."""
        a = expected_window_validity_area(10_000, 0.05, 0.05, 1.0)
        b = expected_window_validity_area(40_000, 0.05, 0.05, 1.0)
        assert 0.04 < b / a < 0.12


class TestHistogramProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.integers(min_value=2, max_value=60))
    @settings(deadline=None, max_examples=25)
    def test_split_conserves_mass_and_area(self, seed, buckets):
        rng = np.random.default_rng(seed)
        grid = rng.poisson(3.0, size=(12, 12)).astype(float)
        hist = MinskewHistogram.from_grid(grid, UNIT, num_buckets=buckets)
        assert math.isclose(sum(b.count for b in hist.buckets), grid.sum())
        assert math.isclose(sum(b.area for b in hist.buckets), 1.0,
                            rel_tol=1e-9)
        assert len(hist) <= buckets

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(deadline=None, max_examples=20)
    def test_estimate_count_never_negative(self, seed):
        rng = np.random.default_rng(seed)
        grid = rng.poisson(2.0, size=(8, 8)).astype(float)
        hist = MinskewHistogram.from_grid(grid, UNIT, num_buckets=16)
        r = Rect(rng.uniform(0, 0.5), rng.uniform(0, 0.5),
                 rng.uniform(0.5, 1), rng.uniform(0.5, 1))
        est = hist.estimate_count(r)
        assert 0.0 <= est <= grid.sum() + 1e-9

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(deadline=None, max_examples=20)
    def test_more_buckets_never_worse_on_grid_aligned_queries(self, seed):
        """With queries aligned to grid cells the histogram is exact
        regardless of bucketing (mass conservation within buckets)."""
        rng = np.random.default_rng(seed)
        grid = rng.poisson(2.0, size=(8, 8)).astype(float)
        hist = MinskewHistogram.from_grid(grid, UNIT, num_buckets=64)
        # 64 buckets over 64 cells: each bucket is one cell, so any
        # cell-aligned rectangle estimate is exact.
        if len(hist) == 64:
            r = Rect(0.25, 0.25, 0.75, 0.75)
            truth = grid[2:6, 2:6].sum()
            assert math.isclose(hist.estimate_count(r), truth, rel_tol=1e-9)
