"""Cache-capacity x shard-count sweep for the consolidated service.

A fleet of *thin* clients (no client-side result cache — every tick is
a round-trip) follows random-waypoint trajectories and issues kNN
requests straight through :meth:`QueryService.answer`.  Because a
moving client re-asks from inside the validity region it was just
served, the server-side :class:`ValidityCache` absorbs a large share
of the load, and the sharded scatter-gather server cuts the node
accesses each miss costs.  The sweep reports, per configuration,

* fleet throughput (queries/second, single dispatch thread so the
  numbers compare like-for-like),
* server-cache hit ratio,
* total R*-tree node accesses.

The headline this bench demonstrates (and the pytest wrapper asserts):
the sharded + cached configuration sustains **>= 2x the throughput**
of the single-tree uncached baseline at a **>= 30% cache hit rate**.

Run directly (``python benchmarks/bench_cache_shard.py``) or under
pytest-benchmark (``pytest benchmarks/bench_cache_shard.py``).
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from common import CONFIG, SCALE, print_table, run_once, uniform_dataset, \
    write_bench_record

from repro import CacheConfig, ExecutionConfig, KNNRequest, build_service
from repro.datasets.synthetic import UNIT_UNIVERSE
from repro.mobility import random_waypoint

# Thin-client fleet: positions advance slowly relative to the typical
# validity-region diameter, so consecutive ticks (and crossing
# clients) often land inside an already-cached region.
NUM_CLIENTS = 24 if SCALE == "smoke" else 48
TICKS = 40 if SCALE == "smoke" else 80
NUM_POINTS = 10_000 if SCALE == "smoke" else CONFIG.default_n
K = 3
# Validity-region diameter shrinks ~1/sqrt(N); keep the per-tick step a
# fixed fraction of it so the hit rate is density-independent.
SPEED = 0.15 / NUM_POINTS ** 0.5
CACHE_CAPACITY = 1024
SHARD_GRID = 4  # 4x4 = 16 shards

#: (shards, cache_capacity) configurations swept, baseline first.
SWEEP: List[Tuple[int, int]] = [
    (1, 0),
    (1, CACHE_CAPACITY),
    (SHARD_GRID, 0),
    (SHARD_GRID, CACHE_CAPACITY),
]


def _trajectories() -> List[List[Tuple[float, float]]]:
    return [
        [(s.position.x, s.position.y) for s in
         random_waypoint(UNIT_UNIVERSE, TICKS, speed=SPEED, seed=7000 + i)]
        for i in range(NUM_CLIENTS)
    ]


def _drive(shards: int, cache_capacity: int, points,
           trajectories) -> Dict[str, float]:
    service = build_service(
        points,
        shards=shards,
        cache=(CacheConfig(capacity=cache_capacity)
               if cache_capacity > 0 else None),
        # single dispatch thread keeps the timing stable and comparable
        execution=ExecutionConfig(backend="thread", workers=1),
    )
    start = time.perf_counter()
    queries = 0
    for tick in range(TICKS):
        for trajectory in trajectories:
            service.answer(KNNRequest(trajectory[tick], k=K))
            queries += 1
    elapsed = time.perf_counter() - start
    return {
        "queries": queries,
        "elapsed_s": elapsed,
        "throughput_qps": queries / elapsed,
        "hit_ratio": service.cache.hit_ratio if service.cache else 0.0,
        "node_accesses": service.server.io_stats.total_node_accesses,
    }


def run_cache_shard() -> Dict[Tuple[int, int], Dict[str, float]]:
    points = uniform_dataset(NUM_POINTS)
    trajectories = _trajectories()
    results: Dict[Tuple[int, int], Dict[str, float]] = {}
    for shards, capacity in SWEEP:
        results[(shards, capacity)] = _drive(
            shards, capacity, points, trajectories)
    baseline = results[SWEEP[0]]["throughput_qps"]
    rows = []
    for (shards, capacity), r in results.items():
        rows.append([
            shards * shards if shards > 1 else 1,
            capacity,
            f"{r['throughput_qps']:.0f}",
            f"{r['throughput_qps'] / baseline:.2f}x",
            f"{100.0 * r['hit_ratio']:.0f}%",
            int(r["node_accesses"]),
        ])
    print_table(
        f"cache x shard sweep (N={NUM_POINTS}, {NUM_CLIENTS} clients x "
        f"{TICKS} ticks, k={K}, scale={SCALE})",
        ["shards", "cache cap", "q/s", "speedup", "hit rate",
         "node accesses"],
        rows,
    )
    metrics = {}
    for (shards, capacity), r in results.items():
        prefix = f"s{shards}c{capacity}"
        metrics[f"{prefix}.throughput_qps"] = r["throughput_qps"]
        metrics[f"{prefix}.node_accesses"] = r["node_accesses"]
        metrics[f"{prefix}.hit_ratio"] = r["hit_ratio"]
    metrics["speedup"] = (results[(SHARD_GRID, CACHE_CAPACITY)]
                          ["throughput_qps"] / baseline)
    write_bench_record("cache_shard", metrics, context={
        "clients": NUM_CLIENTS, "ticks": TICKS, "n": NUM_POINTS, "k": K})
    return results


def test_cache_shard(benchmark):
    results = run_once(benchmark, run_cache_shard)
    baseline = results[(1, 0)]
    combined = results[(SHARD_GRID, CACHE_CAPACITY)]
    speedup = combined["throughput_qps"] / baseline["throughput_qps"]
    assert combined["hit_ratio"] >= 0.30, (
        f"server cache hit ratio {combined['hit_ratio']:.0%} < 30%")
    assert speedup >= 2.0, (
        f"sharded+cached throughput only {speedup:.2f}x the baseline")
    assert combined["node_accesses"] < baseline["node_accesses"]


if __name__ == "__main__":
    run_cache_shard()
