"""Diff the last two runs of a bench record and fail on regressions.

The regression trail: benches append flat numeric metrics to
schema-versioned ``BENCH_obs_<name>.json`` / ``BENCH_kernel_<name>.json``
/ ``BENCH_fleet_<name>.json`` / ``BENCH_incr_<name>.json`` /
``BENCH_mixed_<name>.json`` / ``BENCH_slo_<name>.json`` files (see
``common.write_bench_record``); this tool compares each record's most
recent run against the one before it and exits non-zero when a guarded
metric regressed by more than the threshold (default 25%).

Guarded metrics — where a *worse* value fails the check:

* latency quantiles (``*p50_ms``, ``*p95_ms``, ``*p99_ms``) and
  elapsed times (``*elapsed_s``): higher is worse;
* node accesses (``*node_accesses*``): higher is worse;
* throughput (``*throughput*``, ``*qps*``), hit ratios
  (``*hit_ratio*``) and availability (``*availability*``): **lower**
  is worse;
* incorrect answers (``*incorrect*``): higher is worse (any regression
  from a zero baseline is reported but cannot be ratio-compared);
* instrumentation overhead (``*overhead*``): higher is worse.

Unguarded metrics (counts like ``queries``) are reported but never
fail the check.

Usage::

    python benchmarks/compare.py [RECORD.json ...] [--threshold 0.25]

With no file arguments, every ``BENCH_obs_*.json``,
``BENCH_kernel_*.json``, ``BENCH_fleet_*.json``, ``BENCH_incr_*.json``,
``BENCH_mixed_*.json`` and ``BENCH_slo_*.json``
in the bench directory (``REPRO_BENCH_DIR``,
default the current directory) is checked.  Exit codes: 0 ok / nothing to compare yet, 1 regression,
2 bad input.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

SCHEMA = "repro-bench/1"

#: (name-substring, higher_is_better) — first match wins.
_DIRECTIONS: List[Tuple[str, bool]] = [
    ("throughput", True),
    ("qps", True),
    ("hit_ratio", True),
    ("availability", True),
    ("incorrect", False),
    ("overhead", False),
    ("p50_ms", False),
    ("p95_ms", False),
    ("p99_ms", False),
    ("latency", False),
    ("elapsed_s", False),
    ("node_accesses", False),
]


def direction(metric: str) -> Optional[bool]:
    """True = higher is better, False = lower is better, None = unguarded."""
    for needle, higher in _DIRECTIONS:
        if needle in metric:
            return higher
    return None


def compare_runs(before: Dict[str, float], after: Dict[str, float],
                 threshold: float) -> List[Tuple[str, float, float, float]]:
    """Regressions between two metric dicts.

    Returns ``(metric, before, after, relative_change)`` rows where the
    guarded metric moved in its bad direction by more than ``threshold``
    (relative to the earlier value).
    """
    regressions = []
    for metric in sorted(set(before) & set(after)):
        higher_better = direction(metric)
        if higher_better is None:
            continue
        old, new = before[metric], after[metric]
        if old <= 0:
            continue  # no meaningful baseline
        change = (new - old) / old
        bad = -change if higher_better else change
        if bad > threshold:
            regressions.append((metric, old, new, change))
    return regressions


def check_record(path: str, threshold: float) -> Tuple[int, List[str]]:
    """(exit_code, report_lines) for one record file."""
    try:
        with open(path) as fh:
            record = json.load(fh)
    except (OSError, ValueError) as exc:
        return 2, [f"{path}: unreadable ({exc})"]
    if record.get("schema") != SCHEMA:
        return 2, [f"{path}: unknown schema {record.get('schema')!r} "
                   f"(expected {SCHEMA!r})"]
    runs = record.get("runs", [])
    if len(runs) < 2:
        return 0, [f"{path}: {len(runs)} run(s) recorded — nothing to "
                   "compare yet"]
    before, after = runs[-2]["metrics"], runs[-1]["metrics"]
    regressions = compare_runs(before, after, threshold)
    lines = [f"{path}: comparing run #{len(runs) - 1} -> #{len(runs)} "
             f"(threshold {threshold:.0%})"]
    for metric in sorted(set(before) & set(after)):
        old, new = before[metric], after[metric]
        change = (new - old) / old if old else float("inf")
        guarded = direction(metric)
        tag = ("  " if guarded is None
               else "~ " if all(metric != r[0] for r in regressions)
               else "! ")
        lines.append(f"  {tag}{metric}: {old:g} -> {new:g} ({change:+.1%})")
    if regressions:
        lines.append(f"  REGRESSED: " + ", ".join(
            f"{m} {c:+.1%}" for m, _o, _n, c in regressions))
        return 1, lines
    lines.append("  ok: no guarded metric regressed")
    return 0, lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="compare the last two runs of BENCH_*.json records")
    parser.add_argument("records", nargs="*",
                        help="record files (default: BENCH_obs_*.json, "
                             "BENCH_kernel_*.json, BENCH_fleet_*.json, "
                             "BENCH_incr_*.json, BENCH_mixed_*.json and "
                             "BENCH_slo_*.json in $REPRO_BENCH_DIR or .)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="maximum tolerated relative regression "
                             "(default 0.25 = 25%%)")
    args = parser.parse_args(argv)
    records = args.records
    if not records:
        bench_dir = os.environ.get("REPRO_BENCH_DIR", ".")
        records = sorted(
            glob.glob(os.path.join(bench_dir, "BENCH_obs_*.json"))
            + glob.glob(os.path.join(bench_dir, "BENCH_kernel_*.json"))
            + glob.glob(os.path.join(bench_dir, "BENCH_fleet_*.json"))
            + glob.glob(os.path.join(bench_dir, "BENCH_incr_*.json"))
            + glob.glob(os.path.join(bench_dir, "BENCH_mixed_*.json"))
            + glob.glob(os.path.join(bench_dir, "BENCH_slo_*.json")))
        if not records:
            print(f"no BENCH_obs_*.json, BENCH_kernel_*.json, "
                  f"BENCH_fleet_*.json, BENCH_incr_*.json, "
                  f"BENCH_mixed_*.json or BENCH_slo_*.json records "
                  f"under {bench_dir!r}; run a bench first")
            return 0
    worst = 0
    for path in records:
        code, lines = check_record(path, args.threshold)
        print("\n".join(lines))
        worst = max(worst, code)
    return worst


if __name__ == "__main__":
    sys.exit(main())
