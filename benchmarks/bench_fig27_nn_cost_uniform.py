"""Figure 27: server cost of location-based NN queries (uniform, k=1).

(a) Node accesses per query vs N, split into the initial NN query and
    the follow-up TPNN queries.  The paper: TPNN cost ~12x the NN cost
    (about 6 TPNN queries to find influence objects + 6 to confirm
    vertices).
(b) Page accesses per query with an LRU buffer of 10 % of the tree: the
    buffer absorbs most of the TPNN cost because all TP queries touch
    the same neighbourhood the NN query just loaded.
"""

from common import (
    CONFIG,
    print_table,
    query_workload,
    run_once,
    uniform_dataset,
    uniform_tree,
)
from repro.core import compute_nn_validity
from repro.datasets.synthetic import UNIT_UNIVERSE


def _workload_cost(tree, queries, k=1):
    """Per-query NA and PA, split by phase, with a warm 10% LRU buffer."""
    tree.attach_lru_buffer(0.1)
    tree.disk.cold_restart()
    for q in queries:
        compute_nn_validity(tree, q, k=k, universe=UNIT_UNIVERSE)
    stats = tree.disk.stats
    nq = len(queries)
    na = stats.node_accesses_by_phase()
    pa = stats.page_faults_by_phase()
    tree.disk.set_buffer(0)  # leave the tree unbuffered for other benches
    return (na.get("nn", 0) / nq, na.get("tpnn", 0) / nq,
            pa.get("nn", 0) / nq, pa.get("tpnn", 0) / nq)


def run_fig27():
    rows_a, rows_b = [], []
    for n in CONFIG.uniform_cardinalities:
        tree = uniform_tree(n)
        queries = query_workload(uniform_dataset(n), UNIT_UNIVERSE,
                                 CONFIG.num_queries)
        na_nn, na_tp, pa_nn, pa_tp = _workload_cost(tree, queries)
        rows_a.append((n, na_nn, na_tp, na_nn + na_tp))
        rows_b.append((n, pa_nn, pa_tp, pa_nn + pa_tp))
    print_table("Figure 27a: node accesses vs N (uniform, k=1)",
                ["N", "NN query", "TPNN queries", "total"], rows_a)
    print_table("Figure 27b: page accesses vs N (10% LRU buffer)",
                ["N", "NN query", "TPNN queries", "total"], rows_b)
    return rows_a, rows_b


def test_fig27(benchmark):
    rows_a, rows_b = run_once(benchmark, run_fig27)
    for (_, na_nn, na_tp, _), (_, pa_nn, pa_tp, _) in zip(rows_a, rows_b):
        # TPNN node accesses dominate (paper: ~12x the NN query).
        assert na_tp > 4 * na_nn
        # The buffer absorbs most of the TPNN cost.
        assert pa_tp < 0.5 * na_tp


if __name__ == "__main__":
    run_fig27()
