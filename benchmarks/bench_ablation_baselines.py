"""Ablation: end-to-end protocol comparison over moving clients.

The system-level payoff the paper's introduction promises: a client
following a random-waypoint trajectory, served by each protocol over
the same dataset.  Reported: server queries per position update and
bytes shipped.  The TP baseline assumes the velocity is known — and
still loses whenever the client turns, which is the paper's motivation
for location-based (rather than time-based) validity.
"""

from common import CONFIG, print_table, run_once, uniform_dataset, uniform_tree
from repro.datasets.synthetic import UNIT_UNIVERSE
from repro.mobility import random_waypoint, simulate_knn_protocols

NUM_STEPS = 150 if CONFIG.num_queries <= 50 else 500


def run_baseline_comparison():
    n = CONFIG.default_n
    tree = uniform_tree(n)
    rows = []
    for speed in (0.0005, 0.002, 0.01):
        trajectory = random_waypoint(UNIT_UNIVERSE, NUM_STEPS, speed=speed,
                                     seed=42)
        reports = simulate_knn_protocols(tree, trajectory, k=1, sr01_m=8)
        for rep in reports:
            rows.append((speed, rep.protocol, rep.server_queries,
                         f"{rep.query_saving:.1%}", rep.bytes_received))
    print_table(
        f"Ablation: protocol comparison (N={n}, {NUM_STEPS} updates)",
        ["speed", "protocol", "server queries", "saving", "bytes"], rows)
    return rows


def test_baselines(benchmark):
    rows = run_once(benchmark, run_baseline_comparison)
    by_key = {(speed, proto): q for speed, proto, q, _, _ in rows}
    for speed in (0.0005, 0.002, 0.01):
        naive = by_key[(speed, "naive")]
        validity = by_key[(speed, "validity-region")]
        tp = by_key[(speed, "tp")]
        # The headline claim; at extreme speeds every protocol degrades
        # to naive, so equality is allowed there.
        assert validity <= naive
        assert validity <= tp            # beats velocity-based validity too
    assert by_key[(0.0005, "validity-region")] < by_key[(0.0005, "naive")]
    # Slow clients re-query less.
    assert (by_key[(0.0005, "validity-region")]
            <= by_key[(0.01, "validity-region")])


if __name__ == "__main__":
    run_baseline_comparison()
