"""Figure 32: window-query influence sets vs qs (GR and NA)."""

import math

from common import CONFIG, REAL_DATASETS, print_table, query_workload, run_once
from repro.core import compute_window_validity

KM2_TO_M2 = 1_000_000.0


def run_fig32(name):
    dataset_fn, tree_fn, _, universe = REAL_DATASETS[name]
    tree = tree_fn()
    queries = query_workload(dataset_fn(), universe, CONFIG.num_queries_real)
    rows = []
    for qs_km2 in CONFIG.real_window_areas_km2:
        side = math.sqrt(qs_km2 * KM2_TO_M2)
        inner = outer = 0
        for q in queries:
            res = compute_window_validity(tree, q, side, side,
                                          universe=universe)
            inner += len(res.inner_influence)
            outer += len(res.outer_influence)
        rows.append((f"{qs_km2:g}", inner / len(queries),
                     outer / len(queries),
                     (inner + outer) / len(queries)))
    print_table(f"Figure 32 ({name}): window |S_inf| vs qs",
                ["qs(km^2)", "inner", "outer", "total"], rows)
    return rows


def test_fig32_gr(benchmark):
    rows = run_once(benchmark, lambda: run_fig32("GR"))
    for _, inner, outer, total in rows:
        assert total < 6.0  # a handful of influence objects at most


def test_fig32_na(benchmark):
    rows = run_once(benchmark, lambda: run_fig32("NA"))
    for _, inner, outer, total in rows:
        assert total < 6.0


if __name__ == "__main__":
    run_fig32("GR")
    run_fig32("NA")
