"""Figure 22: area of V(q) for nearest-neighbour queries (uniform data).

(a) k = 1, cardinality N swept — the area drops linearly with N.
(b) N fixed, k swept — the area shrinks roughly with 1/(2k-1).

Both series print the measured mean area next to the Section 5
estimate, mirroring the paper's actual/estimated pairs.
"""

from common import (
    CONFIG,
    print_table,
    query_workload,
    run_once,
    uniform_dataset,
    uniform_tree,
)
from repro.analysis import expected_nn_validity_area
from repro.core import compute_nn_validity
from repro.datasets.synthetic import UNIT_UNIVERSE


def _mean_area(tree, queries, k):
    areas = [
        compute_nn_validity(tree, q, k=k, universe=UNIT_UNIVERSE).region.area()
        for q in queries
    ]
    return sum(areas) / len(areas)


def run_fig22a():
    rows = []
    for n in CONFIG.uniform_cardinalities:
        tree = uniform_tree(n)
        queries = query_workload(uniform_dataset(n), UNIT_UNIVERSE,
                                 CONFIG.num_queries)
        actual = _mean_area(tree, queries, k=1)
        estimated = expected_nn_validity_area(n, 1, 1.0)
        rows.append((n, actual, estimated))
    print_table("Figure 22a: area of V(q) vs N (uniform, k=1)",
                ["N", "actual", "estimated"], rows)
    return rows


def run_fig22b():
    n = CONFIG.default_n
    tree = uniform_tree(n)
    queries = query_workload(uniform_dataset(n), UNIT_UNIVERSE,
                             CONFIG.num_queries)
    rows = []
    for k in CONFIG.ks:
        actual = _mean_area(tree, queries, k=k)
        estimated = expected_nn_validity_area(n, k, 1.0)
        rows.append((k, actual, estimated))
    print_table(f"Figure 22b: area of V(q) vs k (uniform, N={n})",
                ["k", "actual", "estimated"], rows)
    return rows


def test_fig22a(benchmark):
    rows = run_once(benchmark, run_fig22a)
    # The paper's headline shape: area drops linearly with N.
    assert rows[0][1] > rows[-1][1]


def test_fig22b(benchmark):
    rows = run_once(benchmark, run_fig22b)
    # Area shrinks monotonically with k.
    areas = [r[1] for r in rows]
    assert all(a > b for a, b in zip(areas, areas[1:]))


if __name__ == "__main__":
    run_fig22a()
    run_fig22b()
