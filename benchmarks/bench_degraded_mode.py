"""Degraded-mode benchmark: throughput and latency under injected faults.

Not a figure of the paper — this exercises the resilience layer: a
client fleet drives the query service while the simulated disk fails a
seeded fraction of page reads (1–10%).  The service retries with
backoff, the circuit breaker sheds load when the disk is dying, budget
exhaustion degrades validity regions instead of missing deadlines, and
clients fall back to bounded-staleness cache answers rather than
erroring out.

The bench reports, per fault rate: throughput (position updates/s),
kNN latency quantiles, the retry count, the degraded-response ratio,
stale cache answers, client-visible errors, and the breaker's
trip/recovery tally — then dumps the whole sweep as JSON.
"""

import json
import sys
from time import perf_counter

from common import CONFIG, SCALE, bulk_load_str, print_table, run_once, \
    uniform_dataset

from repro.core import LocationServer
from repro.core.api import QueryBudget
from repro.service import (
    BreakerConfig,
    ClientFleet,
    FleetConfig,
    QueryService,
    ResilienceConfig,
    RetryPolicy,
)
from repro.storage import FaultPlan, inject_faults

FAULT_RATES = (0.0, 0.01, 0.05, 0.10)
NUM_CLIENTS = 12 if SCALE == "smoke" else 48
TICKS = 20 if SCALE == "smoke" else 100
WORKERS = 8
#: Tight enough that a visible share of kNN queries exhaust it mid-TPNN.
NODE_ACCESS_BUDGET = 60


def _run_one(fault_rate: float, seed: int = 11):
    # A fresh tree per rate: fault injection swaps the tree's disk.
    tree = bulk_load_str(uniform_dataset(CONFIG.uniform_cardinalities[0]))
    server = LocationServer(tree)
    service = QueryService(server, resilience=ResilienceConfig(
        retry=RetryPolicy(max_attempts=4),
        breaker=BreakerConfig(failure_threshold=8, reset_timeout_s=0.05),
        default_budget=QueryBudget(max_node_accesses=NODE_ACCESS_BUDGET),
        seed=seed,
    ))
    if fault_rate > 0.0:
        inject_faults(tree, FaultPlan(seed=seed, read_failure_rate=fault_rate))
    fleet = ClientFleet(service, FleetConfig(
        num_clients=NUM_CLIENTS, seed=seed, max_stale=5,
        continue_on_error=fault_rate > 0.0))
    t0 = perf_counter()
    report = fleet.run(TICKS, max_workers=WORKERS)
    elapsed = perf_counter() - t0
    res = report.snapshot["resilience"]
    breaker = res["breaker"] or {}
    knn = service.metrics.histogram_merged(
        "service.latency_ms", query_kind="knn")
    return {
        "fault_rate": fault_rate,
        "updates": report.stats.position_updates,
        "throughput_per_s": report.stats.position_updates / elapsed,
        "knn_p50_ms": knn.get("p50", 0.0),
        "knn_p95_ms": knn.get("p95", 0.0),
        "queries": res_queries(report),
        "retries": res["retries"],
        "errors": res["errors"],
        "degraded": res["degraded"],
        "degraded_ratio": res["degraded_ratio"],
        "stale_answers": report.stats.stale_answers,
        "client_errors": report.errors,
        "breaker_trips": breaker.get("trips", 0),
        "breaker_recoveries": breaker.get("recoveries", 0),
    }


def res_queries(report) -> int:
    return report.snapshot["service"]["queries"]


def run_sweep():
    results = [_run_one(rate) for rate in FAULT_RATES]
    print_table(
        f"Degraded mode: {NUM_CLIENTS} clients x {TICKS} ticks, "
        f"budget {NODE_ACCESS_BUDGET} node accesses",
        ["fault_rate", "upd/s", "p50_ms", "p95_ms", "retries",
         "degraded", "deg_ratio", "stale", "errors", "trips"],
        [(r["fault_rate"], r["throughput_per_s"], r["knn_p50_ms"],
          r["knn_p95_ms"], r["retries"], r["degraded"], r["degraded_ratio"],
          r["stale_answers"], r["client_errors"], r["breaker_trips"])
         for r in results])
    print()
    print(f"=== degraded-mode sweep JSON (REPRO_SCALE={SCALE}) ===")
    print(json.dumps({"sweep": results}, indent=2, sort_keys=True))
    sys.stdout.flush()
    return results


def test_degraded_mode(benchmark):
    results = run_once(benchmark, run_sweep)
    assert [r["fault_rate"] for r in results] == list(FAULT_RATES)
    for r in results:
        # The JSON contract the resilience docs promise.
        assert 0.0 <= r["degraded_ratio"] <= 1.0
        assert r["updates"] == NUM_CLIENTS * TICKS
    clean = results[0]
    assert clean["retries"] == 0 and clean["client_errors"] == 0
    # The tight node-access budget must actually degrade some queries.
    assert clean["degraded"] > 0
    # Under faults the service visibly retried.
    assert any(r["retries"] > 0 for r in results[1:])


if __name__ == "__main__":
    run_sweep()
