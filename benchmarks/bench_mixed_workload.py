"""Mixed query-type workload through the registry-dispatched service.

Every query tier in the service is now registry-driven: kNN, window,
range, reverse-kNN and probabilistic-kNN requests all flow through the
same ``answer()`` path, the same validity cache and the same sharded
fan-out.  This bench drives a *mixed* fleet — every client issues one
kind, in fleet-like proportions — and checks that the cache era's
headline survives heterogeneity: the cached + sharded configuration
must sustain **>= 2x the throughput** of the uncached single-tree
baseline at a **>= 30% overall cache hit rate**, even though the two
new kinds answer from dataset snapshots (no tree descent) and carry
differently-shaped validity regions (disk intersections, annuli).

Run directly (``python benchmarks/bench_mixed_workload.py``) or under
pytest-benchmark (``pytest benchmarks/bench_mixed_workload.py``).
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from common import CONFIG, SCALE, print_table, run_once, uniform_dataset, \
    write_bench_record

from repro import CacheConfig, ExecutionConfig, KNNRequest, RangeRequest, \
    WindowRequest, build_service
from repro.core.probknn import ProbKNNRequest
from repro.core.rknn import RKNNRequest
from repro.datasets.synthetic import UNIT_UNIVERSE
from repro.mobility import random_waypoint

NUM_CLIENTS = 24 if SCALE == "smoke" else 48
TICKS = 30 if SCALE == "smoke" else 60
NUM_POINTS = 4_000 if SCALE == "smoke" else 10_000
K = 3
UNCERTAINTY = 0.02
# Per-tick step well inside the typical validity-region diameter: the
# snapshot kinds ship tighter regions than kNN, so the mixed fleet
# moves a bit slower than the pure-kNN bench to keep hits comparable.
SPEED = 0.05 / NUM_POINTS ** 0.5
CACHE_CAPACITY = 1024
SHARD_GRID = 4  # 4x4 = 16 shards

#: Fleet-like query mix (fractions of NUM_CLIENTS).
MIX: List[Tuple[str, float]] = [
    ("knn", 0.50),
    ("window", 0.20),
    ("range", 0.10),
    ("rknn", 0.10),
    ("probknn", 0.10),
]

#: (shards, cache_capacity) configurations swept, baseline first.
SWEEP: List[Tuple[int, int]] = [
    (1, 0),
    (SHARD_GRID, CACHE_CAPACITY),
]


def _request(kind: str, pos: Tuple[float, float]):
    if kind == "knn":
        return KNNRequest(pos, k=K)
    if kind == "window":
        return WindowRequest(pos, 0.1, 0.1)
    if kind == "range":
        return RangeRequest(pos, 0.05)
    if kind == "rknn":
        return RKNNRequest(pos, k=K)
    return ProbKNNRequest(pos, uncertainty=UNCERTAINTY, k=K)


def _clients() -> List[Tuple[str, List[Tuple[float, float]]]]:
    kinds: List[str] = []
    for kind, share in MIX:
        kinds.extend([kind] * round(NUM_CLIENTS * share))
    kinds = kinds[:NUM_CLIENTS]
    while len(kinds) < NUM_CLIENTS:
        kinds.append("knn")
    return [
        (kind,
         [(s.position.x, s.position.y) for s in
          random_waypoint(UNIT_UNIVERSE, TICKS, speed=SPEED,
                          seed=9100 + i)])
        for i, kind in enumerate(kinds)
    ]


def _drive(shards: int, cache_capacity: int, points,
           clients) -> Dict[str, float]:
    service = build_service(
        points,
        shards=shards,
        cache=(CacheConfig(capacity=cache_capacity)
               if cache_capacity > 0 else None),
        # single dispatch thread keeps the timing stable and comparable
        execution=ExecutionConfig(backend="thread", workers=1),
    )
    try:
        start = time.perf_counter()
        queries = 0
        for tick in range(TICKS):
            for kind, trajectory in clients:
                service.answer(_request(kind, trajectory[tick]))
                queries += 1
        elapsed = time.perf_counter() - start
        return {
            "queries": queries,
            "elapsed_s": elapsed,
            "throughput_qps": queries / elapsed,
            "hit_ratio": service.cache.hit_ratio if service.cache else 0.0,
        }
    finally:
        service.close()


def run_mixed_workload() -> Dict[Tuple[int, int], Dict[str, float]]:
    points = uniform_dataset(NUM_POINTS)
    clients = _clients()
    results: Dict[Tuple[int, int], Dict[str, float]] = {}
    for shards, capacity in SWEEP:
        results[(shards, capacity)] = _drive(shards, capacity, points,
                                             clients)
    baseline = results[SWEEP[0]]["throughput_qps"]
    mix_label = " ".join(f"{kind}={share:.0%}" for kind, share in MIX)
    rows = []
    for (shards, capacity), r in results.items():
        rows.append([
            shards * shards if shards > 1 else 1,
            capacity,
            f"{r['throughput_qps']:.0f}",
            f"{r['throughput_qps'] / baseline:.2f}x",
            f"{100.0 * r['hit_ratio']:.0f}%",
        ])
    print_table(
        f"mixed workload ({mix_label}; N={NUM_POINTS}, {NUM_CLIENTS} "
        f"clients x {TICKS} ticks, scale={SCALE})",
        ["shards", "cache cap", "q/s", "speedup", "hit rate"],
        rows,
    )
    metrics = {}
    for (shards, capacity), r in results.items():
        prefix = f"s{shards}c{capacity}"
        metrics[f"{prefix}.throughput_qps"] = r["throughput_qps"]
        metrics[f"{prefix}.hit_ratio"] = r["hit_ratio"]
    metrics["speedup"] = (results[(SHARD_GRID, CACHE_CAPACITY)]
                          ["throughput_qps"] / baseline)
    write_bench_record("workload", metrics, context={
        "clients": NUM_CLIENTS, "ticks": TICKS, "n": NUM_POINTS,
        "k": K, "mix": dict(MIX)}, prefix="mixed")
    return results


def test_mixed_workload(benchmark):
    results = run_once(benchmark, run_mixed_workload)
    baseline = results[(1, 0)]
    combined = results[(SHARD_GRID, CACHE_CAPACITY)]
    speedup = combined["throughput_qps"] / baseline["throughput_qps"]
    assert combined["hit_ratio"] >= 0.30, (
        f"mixed-workload cache hit ratio {combined['hit_ratio']:.0%} < 30%")
    assert speedup >= 2.0, (
        f"cached+sharded mixed throughput only {speedup:.2f}x the "
        f"uncached baseline")


if __name__ == "__main__":
    run_mixed_workload()
