"""Ablation: does the vertex-selection order matter?

The paper's algorithm picks "any non-confirmed vertex" (Lemma 3.2 makes
the total n_inf + n_v regardless).  This bench quantifies how the
choice affects the TP-query count and node accesses in practice.
"""

import random

from common import CONFIG, print_table, query_workload, run_once, \
    uniform_dataset, uniform_tree
from repro.core import compute_nn_validity
from repro.core.nn_validity import VERTEX_POLICIES
from repro.datasets.synthetic import UNIT_UNIVERSE


def run_vertex_order_ablation():
    n = CONFIG.default_n
    tree = uniform_tree(n)
    queries = query_workload(uniform_dataset(n), UNIT_UNIVERSE,
                             CONFIG.num_queries)
    rows = []
    for policy in VERTEX_POLICIES:
        rng = random.Random(12345)
        tp = confirmations = sinf = 0
        tree.disk.reset_stats()
        for q in queries:
            res = compute_nn_validity(tree, q, k=1, universe=UNIT_UNIVERSE,
                                      vertex_policy=policy, rng=rng)
            tp += res.num_tp_queries
            confirmations += res.num_confirmations
            sinf += res.num_influence_objects
        nq = len(queries)
        na = tree.disk.stats.node_accesses_by_phase().get("tpnn", 0)
        rows.append((policy, tp / nq, confirmations / nq, sinf / nq,
                     na / nq))
    print_table("Ablation: vertex selection policy (uniform, k=1)",
                ["policy", "TP queries", "confirms", "|S_inf|",
                 "TPNN node accesses"], rows)
    return rows


def test_vertex_order(benchmark):
    rows = run_once(benchmark, run_vertex_order_ablation)
    sinfs = [r[3] for r in rows]
    # Lemma 3.1: every policy finds the same influence set size.
    assert max(sinfs) - min(sinfs) < 0.01
    # Lemma 3.2: TP queries = |S_inf| + confirmations for every policy.
    for _, tp, conf, sinf, _ in rows:
        assert abs(tp - (sinf + conf)) < 0.01


if __name__ == "__main__":
    run_vertex_order_ablation()
