"""Extension (§7): incremental (delta) result transmission.

When a client leaves the validity region and re-queries, the new result
usually overlaps the old one heavily; shipping only the delta "can
dramatically reduce the transmission overhead" (paper, conclusion).
This bench replays the same trajectory with full-response and
delta-response clients and compares bytes on the wire.
"""

import math

from common import CONFIG, print_table, run_once, uniform_tree
from repro.core import LocationServer, MobileClient
from repro.datasets.synthetic import UNIT_UNIVERSE
from repro.mobility import random_waypoint

NUM_STEPS = 200 if CONFIG.num_queries <= 50 else 500


def run_incremental_delta():
    n = CONFIG.default_n
    tree = uniform_tree(n)
    server = LocationServer(tree, UNIT_UNIVERSE)
    rows = []
    for qs in CONFIG.window_fractions:
        side = math.sqrt(qs)
        trajectory = random_waypoint(UNIT_UNIVERSE, NUM_STEPS,
                                     speed=side / 20.0, seed=31)
        plain = MobileClient(server)
        delta = MobileClient(server, incremental=True)
        for step in trajectory:
            a = plain.window(step.position, side, side)
            b = delta.window(step.position, side, side)
            assert {e.oid for e in a} == {e.oid for e in b}
        saved = 1.0 - (delta.stats.bytes_received
                       / max(plain.stats.bytes_received, 1))
        rows.append((f"{qs:.2%}", plain.stats.server_queries,
                     plain.stats.bytes_received,
                     delta.stats.bytes_received, f"{saved:.1%}"))
    print_table(
        f"Extension: delta transmission for window re-queries (N={n})",
        ["qs", "re-queries", "full bytes", "delta bytes", "saved"],
        rows)
    return rows


def test_incremental_delta(benchmark):
    rows = run_once(benchmark, run_incremental_delta)
    for _, requeries, full_bytes, delta_bytes, _ in rows:
        if requeries > 1 and full_bytes > 0:
            assert delta_bytes <= full_bytes
    # For large overlapping windows the saving must be substantial.
    _, _, full_bytes, delta_bytes, _ = rows[-1]
    assert delta_bytes < 0.8 * full_bytes


if __name__ == "__main__":
    run_incremental_delta()
