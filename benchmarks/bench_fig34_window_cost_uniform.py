"""Figure 34: server cost of location-based window queries vs N (uniform).

Two window queries are charged per location-based query: one for the
result and one (over the marginal rectangle) for the candidate outer
influence objects.  With a 10 % LRU buffer the second query is nearly
free because its nodes were just loaded by the first.
"""

import math

from common import (
    CONFIG,
    print_table,
    query_workload,
    run_once,
    uniform_dataset,
    uniform_tree,
)
from repro.core import compute_window_validity
from repro.datasets.synthetic import UNIT_UNIVERSE

FIXED_QS = 0.001


def run_fig34():
    side = math.sqrt(FIXED_QS)
    rows_na, rows_pa = [], []
    for n in CONFIG.uniform_cardinalities:
        tree = uniform_tree(n)
        queries = query_workload(uniform_dataset(n), UNIT_UNIVERSE,
                                 CONFIG.num_queries)
        tree.attach_lru_buffer(0.1)
        tree.disk.cold_restart()
        for q in queries:
            compute_window_validity(tree, q, side, side,
                                    universe=UNIT_UNIVERSE)
        nq = len(queries)
        na = tree.disk.stats.node_accesses_by_phase()
        pa = tree.disk.stats.page_faults_by_phase()
        rows_na.append((n, na.get("result", 0) / nq,
                        na.get("influence", 0) / nq))
        rows_pa.append((n, pa.get("result", 0) / nq,
                        pa.get("influence", 0) / nq))
        tree.disk.set_buffer(0)
    print_table("Figure 34a: window query node accesses vs N (qs=0.1%)",
                ["N", "result query", "influence query"], rows_na)
    print_table("Figure 34b: window query page accesses vs N (10% LRU)",
                ["N", "result query", "influence query"], rows_pa)
    return rows_na, rows_pa


def test_fig34(benchmark):
    rows_na, rows_pa = run_once(benchmark, run_fig34)
    for (_, na_res, na_inf), (_, pa_res, pa_inf) in zip(rows_na, rows_pa):
        # The influence query costs no more than the result query in NA...
        assert na_inf <= na_res * 1.5
        # ...and nearly nothing in PA (paper: 0.04-0.1 faults/query).
        assert pa_inf < 0.5 * max(na_inf, 1.0)
    # NA grows with N (more, smaller nodes intersect the same window).
    assert rows_na[-1][1] >= rows_na[0][1] * 0.8


if __name__ == "__main__":
    run_fig34()
