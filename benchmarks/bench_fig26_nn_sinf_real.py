"""Figure 26: influence-set size |S_inf| vs k on the real-like datasets."""

from common import CONFIG, REAL_DATASETS, print_table, query_workload, run_once
from repro.core import compute_nn_validity


def run_fig26(name):
    dataset_fn, tree_fn, _, universe = REAL_DATASETS[name]
    tree = tree_fn()
    queries = query_workload(dataset_fn(), universe, CONFIG.num_queries_real)
    rows = []
    for k in CONFIG.ks:
        sinf = sum(
            compute_nn_validity(tree, q, k=k,
                                universe=universe).num_influence_objects
            for q in queries) / len(queries)
        rows.append((k, sinf))
    print_table(f"Figure 26 ({name}): |S_inf| vs k", ["k", "|S_inf|"], rows)
    return rows


def test_fig26_gr(benchmark):
    rows = run_once(benchmark, lambda: run_fig26("GR"))
    by_k = dict(rows)
    assert 4.0 < by_k[1] < 9.0          # ~6 at k=1
    assert by_k[max(CONFIG.ks)] <= by_k[1]  # decreases with k


def test_fig26_na(benchmark):
    rows = run_once(benchmark, lambda: run_fig26("NA"))
    by_k = dict(rows)
    assert 4.0 < by_k[1] < 9.0
    assert by_k[max(CONFIG.ks)] <= by_k[1]


if __name__ == "__main__":
    run_fig26("GR")
    run_fig26("NA")
