"""Figure 24: number of edges of V(q) (uniform data).

The edge count measures the client-side validity-check cost (one
half-plane test per edge).  The paper finds ~6 under every setting —
the classic expected edge count of (order-k) Voronoi cells.
"""

from common import (
    CONFIG,
    print_table,
    query_workload,
    run_once,
    uniform_dataset,
    uniform_tree,
)
from repro.analysis import expected_nn_edges
from repro.core import compute_nn_validity
from repro.datasets.synthetic import UNIT_UNIVERSE


def _mean_edges(tree, queries, k):
    edges = [
        compute_nn_validity(tree, q, k=k, universe=UNIT_UNIVERSE).num_edges
        for q in queries
    ]
    return sum(edges) / len(edges)


def run_fig24a():
    rows = []
    for n in CONFIG.uniform_cardinalities:
        tree = uniform_tree(n)
        queries = query_workload(uniform_dataset(n), UNIT_UNIVERSE,
                                 CONFIG.num_queries)
        rows.append((n, _mean_edges(tree, queries, 1), expected_nn_edges(1)))
    print_table("Figure 24a: #edges of V(q) vs N (uniform, k=1)",
                ["N", "edges", "expected"], rows)
    return rows


def run_fig24b():
    n = CONFIG.default_n
    tree = uniform_tree(n)
    queries = query_workload(uniform_dataset(n), UNIT_UNIVERSE,
                             CONFIG.num_queries)
    rows = [(k, _mean_edges(tree, queries, k), expected_nn_edges(k))
            for k in CONFIG.ks]
    print_table(f"Figure 24b: #edges of V(q) vs k (uniform, N={n})",
                ["k", "edges", "expected"], rows)
    return rows


def test_fig24a(benchmark):
    rows = run_once(benchmark, run_fig24a)
    for _, edges, _ in rows:
        assert 4.5 < edges < 9.0  # "around 6"; random-cell sampling
        # is size-biased, which adds a fraction of an edge at large k


def test_fig24b(benchmark):
    rows = run_once(benchmark, run_fig24b)
    for _, edges, _ in rows:
        assert 4.5 < edges < 9.0


if __name__ == "__main__":
    run_fig24a()
    run_fig24b()
