"""Incremental maintenance benchmark: patches vs re-queries, surgical
vs blunt cache invalidation.

Not a figure of the paper — the acceptance gate of the continuous-query
tier (:mod:`repro.service.continuous`) and the surgical
:meth:`~repro.service.cache.ValidityCache.invalidate_mutation` hook:

* **Patch-vs-requery phase** — a pool of standing kNN queries tracks a
  mutation stream (10% mutation rate against the standing pool).  The
  *patch* arm maintains them as subscriptions: every overlapping
  mutation is repaired from the influence-set margin, falling back to a
  full re-query only when the margin is exhausted.  The *requery* arm
  is the pre-subscription behaviour the seed shipped: every mutation
  bumps the epoch, every standing query re-runs.  Both arms replay the
  identical stream; mutation-side node accesses are measured on a
  query-free control run and subtracted, so the comparison is pure
  refresh cost.  The gate: the patch path is **>= 5x cheaper** in node
  accesses.

* **Cache-under-writes phase** — the identical hot-spot query workload
  with 10% interleaved mutations runs against two identically
  configured services, one with the surgical mutation hook, one with
  the ``surgical=False`` invalidate-all baseline.  The gate: the
  surgical server-cache hit ratio is **>= 2x** the blunt baseline.

Metrics append to the schema-versioned ``BENCH_incr_*.json`` regression
trail (``benchmarks/compare.py`` guards ``node_accesses`` lower-is-
better and ``hit_ratio`` higher-is-better).
"""

from __future__ import annotations

import json
import random
import sys

import pytest

from common import SCALE, print_table, run_once, write_bench_record

from repro import (
    CacheConfig,
    ContinuousConfig,
    KNNRequest,
    build_service,
)
from repro.geometry import Rect

UNIT = Rect(0.0, 0.0, 1.0, 1.0)

K = 3
MARGIN = 8
#: Mutations per standing-query refresh round: the 10% write rate.
MUTATION_RATE = 0.10

if SCALE == "smoke":
    N, STANDING, MUTATIONS = 2_000, 12, 80
    CACHE_N, CACHE_TICKS, HOTSPOTS = 2_000, 400, 16
else:
    N, STANDING, MUTATIONS = 10_000, 24, 400
    CACHE_N, CACHE_TICKS, HOTSPOTS = 10_000, 2_000, 32


def _points(seed: int, n: int):
    rng = random.Random(seed)
    return [(rng.random(), rng.random()) for _ in range(n)]


def _stream(seed: int, anchors, start_oid: int, count: int):
    """A reproducible mutation script biased towards the standing
    queries (uniform mutations rarely overlap anything; overlap is the
    case the patch path exists for)."""
    rng = random.Random(seed)
    ops, live, next_oid = [], [], start_oid
    for _ in range(count):
        if live and rng.random() < 0.4:
            oid, x, y = live.pop(rng.randrange(len(live)))
            ops.append(("delete", oid, x, y))
            continue
        ax, ay = anchors[rng.randrange(len(anchors))]
        x = min(1.0, max(0.0, ax + rng.gauss(0.0, 0.05)))
        y = min(1.0, max(0.0, ay + rng.gauss(0.0, 0.05)))
        ops.append(("insert", next_oid, x, y))
        live.append((next_oid, x, y))
        next_oid += 1
    return ops


def _apply(service, op):
    kind, oid, x, y = op
    if kind == "insert":
        service.insert_object(oid, x, y)
    else:
        service.delete_object(oid, x, y)


def _accesses(service) -> int:
    return service.stats_snapshot()["disk"]["total_node_accesses"]


# ----------------------------------------------------------------------
# phase 1: standing queries — subscription patches vs full re-queries
# ----------------------------------------------------------------------
def run_patch_vs_requery(seed: int = 2003):
    points = _points(seed, N)
    rng = random.Random(seed + 1)
    anchors = [(0.15 + 0.7 * rng.random(), 0.15 + 0.7 * rng.random())
               for _ in range(STANDING)]
    ops = _stream(seed + 2, anchors, start_oid=len(points),
                  count=MUTATIONS)

    # Control: the mutation stream alone, to isolate refresh cost.
    control = build_service(points, universe=UNIT)
    base = _accesses(control)
    for op in ops:
        _apply(control, op)
    mutation_cost = _accesses(control) - base
    control.close()

    # Patch arm: standing queries live as subscriptions; overlapping
    # mutations are repaired from the margin, server-side.
    patched = build_service(points, universe=UNIT,
                            continuous=ContinuousConfig(margin=MARGIN))
    subs = [patched.subscribe(KNNRequest(a, k=K)) for a in anchors]
    base = _accesses(patched)
    refetches = pushes = 0
    for op in ops:
        _apply(patched, op)
        for sub in subs:
            updates = sub.drain()
            if updates and updates[-1].kind == "invalidate":
                sub.move(sub._state.point)  # escape hatch: re-query
        pushes = sum(s.pushes for s in subs)
    refetches = sum(s.moves_refetched for s in subs)
    patch_cost = _accesses(patched) - base - mutation_cost
    patched.close()

    # Requery arm: the seed's behaviour — every mutation invalidates
    # every standing query (epoch bump + invalidate-all), so each one
    # re-runs fresh.
    requery = build_service(points, universe=UNIT)
    base = _accesses(requery)
    for op in ops:
        _apply(requery, op)
        for anchor in anchors:
            requery.answer(KNNRequest(anchor, k=K))
    requery_cost = _accesses(requery) - base - mutation_cost
    requery.close()

    return {
        "standing_queries": STANDING,
        "mutations": MUTATIONS,
        "mutation_cost": mutation_cost,
        "patch_node_accesses": patch_cost,
        "requery_node_accesses": requery_cost,
        "refresh_speedup": requery_cost / max(patch_cost, 1),
        "pushes": pushes,
        "refetches": refetches,
    }


# ----------------------------------------------------------------------
# phase 2: server cache hit ratio — surgical vs invalidate-all
# ----------------------------------------------------------------------
def run_cache_under_writes(seed: int = 1777):
    points = _points(seed, CACHE_N)
    rng = random.Random(seed + 1)
    hotspots = [(0.1 + 0.8 * rng.random(), 0.1 + 0.8 * rng.random())
                for _ in range(HOTSPOTS)]
    script = []
    next_oid = len(points)
    for _ in range(CACHE_TICKS):
        if rng.random() < MUTATION_RATE:
            # Uniform writes: most land nowhere near the hot regions —
            # exactly the traffic a blunt epoch bump throws away for.
            script.append(("mutate", next_oid, rng.random(), rng.random()))
            next_oid += 1
        hx, hy = hotspots[rng.randrange(len(hotspots))]
        probe = (min(1.0, max(0.0, hx + rng.gauss(0.0, 0.002))),
                 min(1.0, max(0.0, hy + rng.gauss(0.0, 0.002))))
        script.append(("query", probe))

    def run(surgical: bool) -> dict:
        service = build_service(
            points, universe=UNIT,
            cache=CacheConfig(capacity=4 * HOTSPOTS, surgical=surgical))
        for step in script:
            if step[0] == "mutate":
                _, oid, x, y = step
                service.insert_object(oid, x, y)
            else:
                service.answer(KNNRequest(step[1], k=K))
        snap = service.cache.snapshot()
        service.close()
        return snap

    surgical = run(surgical=True)
    blunt = run(surgical=False)
    return {
        "cache_ticks": CACHE_TICKS,
        "surgical_hit_ratio": surgical["hit_ratio"],
        "blunt_hit_ratio": blunt["hit_ratio"],
        "hit_ratio_gain": (surgical["hit_ratio"]
                           / max(blunt["hit_ratio"], 1e-9)),
        "surgical_drops": surgical["surgical_drops"],
        "surgical_survivals": surgical["surgical_survivals"],
    }


# ----------------------------------------------------------------------
# the bench
# ----------------------------------------------------------------------
def run_all(seed: int = 2003):
    patch = run_patch_vs_requery(seed)
    cache = run_cache_under_writes()
    print_table(
        f"Standing kNN refresh cost over {MUTATIONS} mutations "
        f"({STANDING} standing queries, margin {MARGIN})",
        ["mutations", "patch_accesses", "requery_accesses", "speedup",
         "pushes", "refetches"],
        [(patch["mutations"], patch["patch_node_accesses"],
          patch["requery_node_accesses"],
          round(patch["refresh_speedup"], 1), patch["pushes"],
          patch["refetches"])])
    print_table(
        f"Server cache under {MUTATION_RATE:.0%} writes "
        f"({CACHE_TICKS} ticks, {HOTSPOTS} hot spots)",
        ["surgical_hit_ratio", "blunt_hit_ratio", "gain",
         "drops", "survivals"],
        [(round(cache["surgical_hit_ratio"], 3),
          round(cache["blunt_hit_ratio"], 3),
          round(cache["hit_ratio_gain"], 1),
          cache["surgical_drops"], cache["surgical_survivals"])])
    write_bench_record(
        "maintenance", {**patch, **cache},
        context={"k": K, "margin": MARGIN,
                 "mutation_rate": MUTATION_RATE, "scale": SCALE},
        prefix="incr")
    print()
    print(f"=== incremental maintenance JSON (REPRO_SCALE={SCALE}) ===")
    print(json.dumps({"patch": patch, "cache": cache},
                     indent=2, sort_keys=True))
    sys.stdout.flush()
    return patch, cache


def test_incremental_gate(benchmark):
    patch, cache = run_once(benchmark, run_all)
    # The whole point of the influence-set margin: repairing a standing
    # query costs a small constant, re-running it costs a traversal.
    assert patch["refresh_speedup"] >= 5.0, (
        f"patch path only {patch['refresh_speedup']:.1f}x cheaper")
    # The stream was adversarial enough to mean something: patches
    # actually flowed (not a workload nothing overlapped).
    assert patch["pushes"] > 0
    # Surgical invalidation keeps the cache warm through writes.
    assert cache["hit_ratio_gain"] >= 2.0, (
        f"surgical hit ratio only {cache['hit_ratio_gain']:.1f}x blunt")
    assert cache["surgical_survivals"] > 0


if __name__ == "__main__":
    run_all()
