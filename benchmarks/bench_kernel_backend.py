"""Execution matrix: geometry kernels x shard backends under one API.

Every configuration here is reached through the same front door —
``build_service(points, execution=ExecutionConfig(...))`` — so the
matrix measures exactly what a caller gets by flipping the two
``ExecutionConfig`` knobs:

* ``kernel``: per-candidate ``scalar`` evaluation over the R*-tree
  (the seed baseline), the stdlib ``soa`` columnar kernel, and the
  ``numpy`` columnar kernel (skipped when numpy is unavailable or
  ``REPRO_KERNEL_DISABLE_NUMPY`` is set);
* ``backend``: ``thread`` scatter-gather vs the ``process`` pool with
  struct-packed wire frames (a documented no-op at ``shards=1``).

The headline (asserted by the pytest wrapper when numpy is enabled):
``ExecutionConfig(backend="process", kernel="numpy")`` sustains
**>= 5x** the kNN throughput of the seed thread/scalar baseline.  The
pure-stdlib ``soa`` kernel is the *portability* fallback, not the perf
path — at these cardinalities its linear scans lose to the tree, and
the table shows that honestly.

Results land in the schema-versioned ``BENCH_kernel_exec_matrix.json``
trail (``write_bench_record(..., prefix="kernel")``), which
``benchmarks/compare.py`` guards against >25% throughput regressions.

Run directly (``python benchmarks/bench_kernel_backend.py``) or under
pytest-benchmark (``pytest benchmarks/bench_kernel_backend.py``).
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Tuple

from common import SCALE, print_table, run_once, write_bench_record

from repro import ExecutionConfig, KNNRequest, build_service
from repro.kernel.config import numpy_enabled

# k=10 keeps the scalar path deep in TPNN probing, which is where the
# columnar kernels amortize; the paper's workloads top out near there.
NUM_POINTS = 10_000 if SCALE == "smoke" else 20_000
K = 10
NUM_QUERIES = 120 if SCALE == "smoke" else 200

#: (backend, kernel) configurations swept, seed baseline first.
def _sweep() -> List[Tuple[str, str]]:
    configs = [("thread", "scalar"), ("thread", "soa")]
    if numpy_enabled():
        configs += [("thread", "numpy"), ("process", "numpy")]
    else:
        configs += [("process", "soa")]
    return configs


def _drive(backend: str, kernel: str, points, queries) -> Dict[str, float]:
    service = build_service(
        points, shards=1,
        execution=ExecutionConfig(backend=backend, kernel=kernel))
    service.answer(KNNRequest(queries[0], k=K))  # warm pool + columns
    start = time.perf_counter()
    for q in queries:
        service.answer(KNNRequest(q, k=K))
    elapsed = time.perf_counter() - start
    close = getattr(service.server, "close", None)
    if close is not None:
        close()
    return {
        "queries": float(len(queries)),
        "elapsed_s": elapsed,
        "throughput_qps": len(queries) / elapsed,
    }


def run_kernel_backend() -> Dict[Tuple[str, str], Dict[str, float]]:
    rnd = random.Random(5)
    points = [(rnd.random(), rnd.random()) for _ in range(NUM_POINTS)]
    queries = [(rnd.random(), rnd.random()) for _ in range(NUM_QUERIES)]
    sweep = _sweep()
    results: Dict[Tuple[str, str], Dict[str, float]] = {}
    for backend, kernel in sweep:
        results[(backend, kernel)] = _drive(backend, kernel, points, queries)
    baseline = results[sweep[0]]["throughput_qps"]
    rows = []
    for (backend, kernel), r in results.items():
        rows.append([backend, kernel, f"{r['throughput_qps']:.0f}",
                     f"{r['throughput_qps'] / baseline:.2f}x"])
    print_table(
        f"kernel x backend kNN matrix (N={NUM_POINTS}, k={K}, "
        f"{NUM_QUERIES} queries, scale={SCALE})",
        ["backend", "kernel", "q/s", "speedup"], rows)
    metrics = {}
    for (backend, kernel), r in results.items():
        metrics[f"{backend}_{kernel}.throughput_qps"] = r["throughput_qps"]
    best = max(r["throughput_qps"] for r in results.values())
    metrics["best_speedup"] = best / baseline
    write_bench_record("exec_matrix", metrics, context={
        "n": NUM_POINTS, "k": K, "queries": NUM_QUERIES,
        "numpy": numpy_enabled()}, prefix="kernel")
    return results


def test_kernel_backend(benchmark):
    results = run_once(benchmark, run_kernel_backend)
    baseline = results[("thread", "scalar")]["throughput_qps"]
    if numpy_enabled():
        process_numpy = results[("process", "numpy")]["throughput_qps"]
        speedup = process_numpy / baseline
        assert speedup >= 5.0, (
            f"process/numpy throughput only {speedup:.2f}x the "
            f"thread/scalar seed baseline (need >= 5x)")
    else:
        # Fallback leg: stdlib soa must at least stay on the road.
        assert results[("process", "soa")]["throughput_qps"] > 0


if __name__ == "__main__":
    run_kernel_backend()
