"""Shared harness for the experiment benches.

Each ``bench_figNN_*.py`` module regenerates one figure of the paper's
Section 6, printing the same series (and, where the paper plots one,
the analytical estimate next to the measurement).

Scaling: the environment variable ``REPRO_SCALE`` selects the workload
size — ``smoke`` (default; minutes for the full sweep) or ``paper``
(the paper's cardinalities and 500-query workloads; budget hours).
Trees, datasets and histograms are cached per process so consecutive
benches reuse them.
"""

from __future__ import annotations

import json
import math
import os
import sys
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Iterable, List, Sequence

import numpy as np

from repro.analysis import MinskewHistogram
from repro.datasets import (
    GR_UNIVERSE,
    NA_UNIVERSE,
    data_following_queries,
    make_greece_like,
    make_north_america_like,
    uniform_points,
)
from repro.datasets.synthetic import UNIT_UNIVERSE
from repro.geometry import Rect
from repro.index import RStarTree, bulk_load_str

SCALE = os.environ.get("REPRO_SCALE", "smoke")


@dataclass(frozen=True)
class ScaleConfig:
    uniform_cardinalities: Sequence[int]
    default_n: int                # the fixed-N used by vs-k / vs-qs sweeps
    ks: Sequence[int]
    window_fractions: Sequence[float]   # qs as fraction of the universe
    real_window_areas_km2: Sequence[float]
    num_queries: int
    num_queries_real: int
    gr_n: int
    na_n: int
    histogram_cells: int
    histogram_buckets: int


_CONFIGS = {
    # Fast enough for CI; same parameter *shape* as the paper.
    "smoke": ScaleConfig(
        uniform_cardinalities=(10_000, 30_000, 100_000),
        default_n=100_000,
        ks=(1, 3, 10, 30, 100),
        window_fractions=(0.0001, 0.001, 0.01, 0.1),
        real_window_areas_km2=(100.0, 300.0, 1000.0, 3000.0, 10_000.0),
        num_queries=40,
        num_queries_real=25,
        gr_n=23_268,
        na_n=569_120,
        histogram_cells=10_000,
        histogram_buckets=500,
    ),
    # The paper's setup: N up to 1M, 500 queries, full NA cardinality.
    "paper": ScaleConfig(
        uniform_cardinalities=(10_000, 30_000, 100_000, 300_000, 1_000_000),
        default_n=100_000,
        ks=(1, 3, 10, 30, 100),
        window_fractions=(0.0001, 0.001, 0.01, 0.1),
        real_window_areas_km2=(100.0, 300.0, 1000.0, 3000.0, 10_000.0),
        num_queries=500,
        num_queries_real=500,
        gr_n=23_268,
        na_n=569_120,
        histogram_cells=10_000,
        histogram_buckets=500,
    ),
}

CONFIG = _CONFIGS[SCALE]


# ----------------------------------------------------------------------
# cached data / trees / histograms
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def uniform_dataset(n: int) -> np.ndarray:
    return uniform_points(n, UNIT_UNIVERSE, seed=20030609 + n)


@lru_cache(maxsize=None)
def uniform_tree(n: int) -> RStarTree:
    return bulk_load_str(uniform_dataset(n))


@lru_cache(maxsize=None)
def gr_dataset() -> np.ndarray:
    return make_greece_like(n=CONFIG.gr_n)


@lru_cache(maxsize=None)
def na_dataset() -> np.ndarray:
    return make_north_america_like(n=CONFIG.na_n)


@lru_cache(maxsize=None)
def gr_tree() -> RStarTree:
    return bulk_load_str(gr_dataset())


@lru_cache(maxsize=None)
def na_tree() -> RStarTree:
    return bulk_load_str(na_dataset())


@lru_cache(maxsize=None)
def gr_histogram() -> MinskewHistogram:
    return MinskewHistogram.build(gr_dataset(), GR_UNIVERSE,
                                  CONFIG.histogram_cells,
                                  CONFIG.histogram_buckets)


@lru_cache(maxsize=None)
def na_histogram() -> MinskewHistogram:
    return MinskewHistogram.build(na_dataset(), NA_UNIVERSE,
                                  CONFIG.histogram_cells,
                                  CONFIG.histogram_buckets)


REAL_DATASETS = {
    "GR": (gr_dataset, gr_tree, gr_histogram, GR_UNIVERSE),
    "NA": (na_dataset, na_tree, na_histogram, NA_UNIVERSE),
}


def query_workload(points: np.ndarray, universe: Rect, num: int,
                   seed: int = 777) -> np.ndarray:
    """The paper's workload: queries distributed like the data.

    The jitter is kept small (0.2% of the universe) so that queries on
    the skewed real datasets actually land where the data lives —
    a mobile user asks about the road/city they are on.
    """
    return data_following_queries(points, num, universe, jitter=0.002,
                                  seed=seed)


# ----------------------------------------------------------------------
# output
# ----------------------------------------------------------------------
def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence]) -> None:
    """Render one figure's series as an aligned text table."""
    rows = [tuple(_fmt(v) for v in row) for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    print()
    print(f"=== {title} (REPRO_SCALE={SCALE}) ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    sys.stdout.flush()


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def geometric_mean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def run_once(benchmark, fn: Callable[[], object]):
    """Adapter so experiment harnesses run under pytest-benchmark.

    These benches are experiments (they print tables), not
    micro-benchmarks, so one round is the meaningful unit.
    """
    if benchmark is None:
        return fn()
    return benchmark.pedantic(fn, rounds=1, iterations=1)


# ----------------------------------------------------------------------
# instrumented service runs
# ----------------------------------------------------------------------
def fleet_run(tree, num_clients: int = 16, ticks: int = 25,
              max_workers: int = 8, seed: int = 0,
              incremental_share: float = 0.0,
              return_service: bool = False):
    """Drive a simulated client fleet over ``tree`` through the
    instrumented :class:`~repro.service.service.QueryService`.

    Returns the :class:`~repro.service.fleet.FleetReport`; its
    ``snapshot`` field is the JSON-serializable stats the benches dump
    with :func:`dump_snapshot`.  With ``return_service=True`` returns
    ``(report, service)`` so callers can read the live metrics registry
    (e.g. ``metrics.histogram_merged`` for cross-label percentiles).
    """
    from repro.core import LocationServer
    from repro.service import ClientFleet, FleetConfig, QueryService

    service = QueryService(LocationServer(tree))
    fleet = ClientFleet(service, FleetConfig(
        num_clients=num_clients, seed=seed,
        incremental_share=incremental_share))
    report = fleet.run(ticks, max_workers=max_workers)
    return (report, service) if return_service else report


def dump_snapshot(snapshot, title: str = "service snapshot") -> None:
    """Print a service stats snapshot as JSON (the machine-readable
    companion of :func:`print_table`)."""
    print()
    print(f"=== {title} (REPRO_SCALE={SCALE}) ===")
    print(json.dumps(snapshot, indent=2, sort_keys=True))
    sys.stdout.flush()


# ----------------------------------------------------------------------
# the benchmark regression trail (see benchmarks/compare.py)
# ----------------------------------------------------------------------
#: Record-file schema version; bump on incompatible shape changes.
BENCH_SCHEMA = "repro-bench/1"

#: Runs retained per record file (oldest evicted first).
BENCH_HISTORY = 20


def bench_record_path(name: str, prefix: str = "obs") -> str:
    """Where ``write_bench_record(name, ...)`` persists its runs.

    ``REPRO_BENCH_DIR`` overrides the directory (default: the current
    working directory, which is where CI collects ``BENCH_<prefix>_*.json``
    artifacts from).  ``prefix`` namespaces independent trails: "obs"
    for the observability benches, "kernel" for the execution-config
    (kernel x backend) matrix, "fleet" for the replicated-serving
    chaos/overload gate.
    """
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    return os.path.join(out_dir, f"BENCH_{prefix}_{name}.json")


def write_bench_record(name: str, metrics, context=None,
                       prefix: str = "obs") -> str:
    """Append one run's flat numeric ``metrics`` to the bench record.

    The record file (``BENCH_<prefix>_<name>.json``) keeps a bounded
    run history under a schema version; ``benchmarks/compare.py`` diffs
    the last two runs and fails on large regressions.  Returns the path
    written.
    """
    import time

    path = bench_record_path(name, prefix=prefix)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    record = {"schema": BENCH_SCHEMA, "name": name, "runs": []}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                existing = json.load(fh)
            if (existing.get("schema") == BENCH_SCHEMA
                    and existing.get("name") == name):
                record = existing
        except (OSError, ValueError):
            pass  # corrupt or foreign file: start a fresh history
    run = {
        "recorded_at": time.time(),
        "scale": SCALE,
        "metrics": {k: float(v) for k, v in dict(metrics).items()},
    }
    if context:
        run["context"] = dict(context)
    record["runs"] = (record["runs"] + [run])[-BENCH_HISTORY:]
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"bench record: appended run #{len(record['runs'])} to {path}")
    return path
