"""Extension (§7): location-based circular *region* queries.

The paper's conclusion proposes validity regions for "all restaurants
within a 5 km radius" queries.  This bench measures the conservative
validity-disk radius, the influence-set size (at most two objects) and
the server cost, across range radii — the same quantities Figures
29-35 report for windows.
"""

import math

from common import (
    CONFIG,
    print_table,
    query_workload,
    run_once,
    uniform_dataset,
    uniform_tree,
)
from repro.core import compute_range_validity
from repro.datasets.synthetic import UNIT_UNIVERSE


def run_region_queries():
    n = CONFIG.default_n
    tree = uniform_tree(n)
    queries = query_workload(uniform_dataset(n), UNIT_UNIVERSE,
                             CONFIG.num_queries)
    rows = []
    for qs in CONFIG.window_fractions:
        radius = math.sqrt(qs / math.pi)  # disk of area qs * universe
        tree.attach_lru_buffer(0.1)
        tree.disk.cold_restart()
        area = 0.0
        sinf = 0
        for q in queries:
            res = compute_range_validity(tree, q, radius)
            rho = res.validity_radius
            if math.isfinite(rho):
                area += math.pi * rho * rho
            sinf += len(res.influence_set)
        nq = len(queries)
        na = tree.disk.stats.node_accesses_by_phase()
        pa = tree.disk.stats.page_faults_by_phase()
        rows.append((f"{qs:.2%}", area / nq, sinf / nq,
                     (na.get("result", 0) + na.get("influence", 0)) / nq,
                     (pa.get("result", 0) + pa.get("influence", 0)) / nq))
        tree.disk.set_buffer(0)
    print_table(
        f"Extension: region-query validity disks (uniform, N={n})",
        ["area", "validity disk area", "|S_inf|", "NA", "PA(10% LRU)"],
        rows)
    return rows


def test_region_queries(benchmark):
    rows = run_once(benchmark, run_region_queries)
    areas = [r[1] for r in rows]
    assert all(a > b for a, b in zip(areas, areas[1:]))  # shrinks with qs
    for _, _, sinf, na, pa in rows:
        assert sinf <= 2.0   # at most one inner + one outer object
        assert pa <= na


if __name__ == "__main__":
    run_region_queries()
