"""SLO-stack overhead gate: full observability must cost < 10%.

Not a figure of the paper — this guards the tentpole of the
observability tier: the same deterministic query workload is driven
through a bare :class:`~repro.service.service.QueryService` and through
one carrying the whole telemetry stack (dimensional labeled metrics
with native latency buckets, an SLO engine with two objectives,
tail-based trace sampling, phase profiling, event logging).  The bench
reports throughput and latency for both, computes the relative
overhead, and **fails (exit 1) when the instrumented service is more
than 10% slower** — observability that taxes the hot path double-digit
percent is a regression, not a feature.

The sweep lands in ``BENCH_slo_overhead.json`` (prefix ``slo``) so
``compare.py`` also guards run-over-run drift of the overhead itself.
"""

import sys
from time import perf_counter

from common import CONFIG, SCALE, bulk_load_str, print_table, run_once, \
    uniform_dataset, write_bench_record

from repro.core import LocationServer
from repro.core.api import KNNRequest, WindowRequest
from repro.obs import SLOConfig, SLOEngine
from repro.service import QueryService, TailSamplingConfig

#: The gate: instrumented throughput may cost at most this much.
MAX_OVERHEAD = 0.10
QUERIES = 2_000 if SCALE == "smoke" else 10_000
#: Measured passes per variant; the best pass is scored (noise floor).
REPEATS = 3


def _requests(n: int):
    """A deterministic mixed workload (no RNG: reproducible shapes)."""
    reqs = []
    for i in range(n):
        x = 0.05 + (i * 37 % 90) / 100.0
        y = 0.05 + (i * 53 % 90) / 100.0
        if i % 4 == 3:
            reqs.append(WindowRequest((x, y), width=0.04, height=0.04))
        else:
            reqs.append(KNNRequest((x, y), k=8))
    return reqs


def _service(tree, instrumented: bool) -> QueryService:
    server = LocationServer(tree)
    if not instrumented:
        return QueryService(server)
    slo = SLOEngine([
        SLOConfig(name="availability", objective="availability",
                  target=0.999),
        SLOConfig(name="latency", objective="latency", target=0.99,
                  threshold_ms=250.0),
    ])
    return QueryService(server, slo=slo, profile=True,
                        tail=TailSamplingConfig(keep_1_in=10))


def _drive(tree, reqs, instrumented: bool):
    """Best-of-N pass over the workload; returns (elapsed_s, service)."""
    best = None
    service = None
    for _ in range(REPEATS):
        service = _service(tree, instrumented)
        t0 = perf_counter()
        for req in reqs:
            service.answer(req)
        elapsed = perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, service


def run_overhead() -> dict:
    tree = bulk_load_str(uniform_dataset(CONFIG.uniform_cardinalities[0]))
    reqs = _requests(QUERIES)

    base_s, _ = _drive(tree, reqs, instrumented=False)
    full_s, service = _drive(tree, reqs, instrumented=True)

    base_qps = QUERIES / base_s
    full_qps = QUERIES / full_s
    overhead = (full_s - base_s) / base_s
    knn = service.metrics.histogram_merged("service.latency_ms",
                                           query_kind="knn")

    print_table(
        f"SLO-stack overhead: {QUERIES} queries, best of {REPEATS}",
        ["variant", "elapsed_s", "qps"],
        [("bare service", f"{base_s:.3f}", f"{base_qps:,.0f}"),
         ("slo+tail+profile", f"{full_s:.3f}", f"{full_qps:,.0f}"),
         ("overhead", f"{overhead:+.1%}",
          f"gate < {MAX_OVERHEAD:.0%}")])

    # Sanity: the instrumented run actually exercised the stack.
    snap = service.slo.snapshot()
    assert snap["slos"]["availability"]["observed"]["good"] > 0
    assert service.profiler.snapshot()["sampled"] > 0

    metrics = {
        "queries": QUERIES,
        "baseline_elapsed_s": base_s,
        "instrumented_elapsed_s": full_s,
        "baseline_qps": base_qps,
        "instrumented_qps": full_qps,
        "overhead_frac": overhead,
        "knn_p50_ms": knn["p50"],
        "knn_p95_ms": knn["p95"],
    }
    path = write_bench_record("overhead", metrics,
                              context={"repeats": REPEATS},
                              prefix="slo")
    print(f"\nbench record appended to {path}")
    return metrics


def test_slo_overhead_gate(benchmark):
    metrics = run_once(benchmark, run_overhead)
    assert metrics["queries"] == QUERIES
    assert metrics["instrumented_qps"] > 0
    # The gate: the full telemetry stack must stay under 10% overhead.
    assert metrics["overhead_frac"] <= MAX_OVERHEAD, (
        f"observability overhead {metrics['overhead_frac']:.1%} exceeds "
        f"the {MAX_OVERHEAD:.0%} gate")


if __name__ == "__main__":
    metrics = run_overhead()
    if metrics["overhead_frac"] > MAX_OVERHEAD:
        print(f"FAIL: observability overhead "
              f"{metrics['overhead_frac']:.1%} exceeds the "
              f"{MAX_OVERHEAD:.0%} gate", file=sys.stderr)
        sys.exit(1)
    print(f"ok: observability overhead {metrics['overhead_frac']:+.1%} "
          f"is inside the {MAX_OVERHEAD:.0%} gate")
