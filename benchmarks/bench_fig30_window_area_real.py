"""Figure 30: window V(q) area vs qs on the real-like datasets.

qs ranges over 100..10000 km^2 as in the paper; areas are reported in
m^2.  The estimate uses the Minskew histogram's boundary density.
"""

import math

from common import CONFIG, REAL_DATASETS, print_table, query_workload, run_once
from repro.analysis import expected_window_validity_area_hist
from repro.core import compute_window_validity
from repro.geometry import Rect

KM2_TO_M2 = 1_000_000.0


def run_fig30(name):
    dataset_fn, tree_fn, hist_fn, universe = REAL_DATASETS[name]
    tree = tree_fn()
    hist = hist_fn()
    queries = query_workload(dataset_fn(), universe, CONFIG.num_queries_real)
    rows = []
    for qs_km2 in CONFIG.real_window_areas_km2:
        side = math.sqrt(qs_km2 * KM2_TO_M2)
        actual = est = 0.0
        for q in queries:
            res = compute_window_validity(tree, q, side, side,
                                          universe=universe)
            actual += res.exact_region.area()
            est += expected_window_validity_area_hist(
                hist, Rect.around(q, side, side))
        rows.append((f"{qs_km2:g}", actual / len(queries), est / len(queries)))
    print_table(f"Figure 30 ({name}): window V(q) area vs qs  [m^2]",
                ["qs(km^2)", "actual", "estimated(Minskew)"], rows)
    return rows


def test_fig30_gr(benchmark):
    rows = run_once(benchmark, lambda: run_fig30("GR"))
    # Windows of 10,000 km^2 on the 800 km GR universe frequently overhang
    # the data-space boundary, which legitimately *grows* their validity
    # regions; per-row monotonicity does not hold there, so assert the
    # paper's quantitative envelope instead.
    for _, actual, est in rows:
        # Paper: sizes are "rather large" — thousands of m^2 and up.
        assert actual > 1_000.0
        # Histogram estimate tracks the measurement on a log scale.
        assert est / 100 < actual < est * 100
    # The estimate itself decreases with qs, as in Figure 29b.
    ests = [r[2] for r in rows]
    assert all(a >= b for a, b in zip(ests, ests[1:]))


def test_fig30_na(benchmark):
    rows = run_once(benchmark, lambda: run_fig30("NA"))
    areas = [r[1] for r in rows]
    assert areas[-1] < areas[0]
    for _, actual, _ in rows:
        assert actual > 1_000.0


if __name__ == "__main__":
    run_fig30("GR")
    run_fig30("NA")
