"""Ablation: best-first [HS99] vs depth-first [RKV95] kNN search.

The paper's step (i) can use either; [HS99] is I/O-optimal.  This bench
measures the node-access gap on the uniform datasets.
"""

from common import (
    CONFIG,
    print_table,
    query_workload,
    run_once,
    uniform_dataset,
    uniform_tree,
)
from repro.queries import nearest_neighbors
from repro.datasets.synthetic import UNIT_UNIVERSE


def run_nn_algorithm_ablation():
    rows = []
    for n in CONFIG.uniform_cardinalities:
        tree = uniform_tree(n)
        queries = query_workload(uniform_dataset(n), UNIT_UNIVERSE,
                                 CONFIG.num_queries)
        per_method = {}
        for method in ("best_first", "depth_first"):
            tree.disk.reset_stats()
            for q in queries:
                for k in (1, 10):
                    nearest_neighbors(tree, q, k=k, method=method)
            per_method[method] = (tree.disk.stats.total_node_accesses
                                  / len(queries))
        rows.append((n, per_method["best_first"], per_method["depth_first"]))
    print_table("Ablation: kNN algorithm node accesses (k=1 and k=10)",
                ["N", "best-first [HS99]", "depth-first [RKV95]"], rows)
    return rows


def test_nn_algorithms(benchmark):
    rows = run_once(benchmark, run_nn_algorithm_ablation)
    for _, bf, df in rows:
        assert bf <= df  # [HS99] never reads more nodes


if __name__ == "__main__":
    run_nn_algorithm_ablation()
