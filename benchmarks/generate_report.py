"""Regenerate EXPERIMENTS.md by running every experiment bench.

Usage:
    python benchmarks/generate_report.py            # smoke scale
    REPRO_SCALE=paper python benchmarks/generate_report.py

Each figure's table is captured from the bench module's ``run_*``
functions and written next to the paper's reported behaviour, so the
document always reflects an actual run of the current code.
"""

from __future__ import annotations

import io
import os
import sys
import textwrap
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(__file__))

from common import SCALE  # noqa: E402

import bench_fig22_nn_area_uniform as fig22  # noqa: E402
import bench_fig23_nn_area_real as fig23  # noqa: E402
import bench_fig24_nn_edges as fig24  # noqa: E402
import bench_fig25_nn_sinf_uniform as fig25  # noqa: E402
import bench_fig26_nn_sinf_real as fig26  # noqa: E402
import bench_fig27_nn_cost_uniform as fig27  # noqa: E402
import bench_fig28_nn_cost_real as fig28  # noqa: E402
import bench_fig29_window_area_uniform as fig29  # noqa: E402
import bench_fig30_window_area_real as fig30  # noqa: E402
import bench_fig31_window_sinf_uniform as fig31  # noqa: E402
import bench_fig32_window_sinf_real as fig32  # noqa: E402
import bench_fig34_window_cost_uniform as fig34  # noqa: E402
import bench_fig35_window_cost_real as fig35  # noqa: E402
import bench_ablation_vertex_order as ab_vertex  # noqa: E402
import bench_ablation_nn_algorithms as ab_nn  # noqa: E402
import bench_ablation_window_conservative as ab_cons  # noqa: E402
import bench_ablation_baselines as ab_base  # noqa: E402
import bench_ablation_buffer_size as ab_buffer  # noqa: E402
import bench_ext_region_queries as ext_region  # noqa: E402
import bench_ext_incremental_delta as ext_delta  # noqa: E402

#: (section title, paper's reported behaviour, run callables)
SECTIONS = [
    ("Figure 22 — NN validity-region area (uniform)",
     """Paper: the area of V(q) drops linearly with N (k=1) and shrinks
     roughly with 1/(2k-1) in k; the analytical estimate is accurate.
     Reproduction: same shapes.  For k=1 the measured mean sits ~1.2-1.4x
     above A/N because a random query lands in large cells more often
     (size-biased sampling); the factor grows mildly with k.  On the
     paper's log-scale axes the curves coincide.""",
     [fig22.run_fig22a, fig22.run_fig22b]),
    ("Figure 23 — NN validity-region area (GR / NA)",
     """Paper: same trends on the real datasets; Minskew-based estimates
     accurate.  Reproduction: decreasing trend reproduced on both
     synthetic stand-ins; the histogram estimate tracks the measurement
     within roughly an order of magnitude (road-network density inside a
     histogram bucket is diluted, so the estimate errs large — the
     real-data plots in the paper show the same direction of error less
     strongly).""",
     [lambda: fig23.run_fig23("GR"), lambda: fig23.run_fig23("NA")]),
    ("Figure 24 — edges of V(q)",
     """Paper: ~6 edges under all settings (classic Voronoi expectation),
     measuring the client's half-plane checks.  Reproduction: 6-8 edges
     across N and k (the same size-bias adds a fraction of an edge).""",
     [fig24.run_fig24a, fig24.run_fig24b]),
    ("Figure 25 — influence-set size (uniform)",
     """Paper: |S_inf| ~ 6 for k=1 at every N; drops towards ~4 for
     k >= 10 because one object can contribute several edges.
     Reproduction: ~6.5 at k=1, decreasing in k — same shape, same
     mechanism (pair count exceeds object count for k > 1).""",
     [fig25.run_fig25a, fig25.run_fig25b]),
    ("Figure 26 — influence-set size (GR / NA)",
     """Paper: same as uniform.  Reproduction: ~6 at k=1, decreasing
     with k on both datasets.""",
     [lambda: fig26.run_fig26("GR"), lambda: fig26.run_fig26("NA")]),
    ("Figure 27 — server cost of location-based NN (uniform)",
     """Paper: TPNN node accesses ~12x the initial NN query (about 6 TP
     queries to discover influence objects + 6 to confirm vertices);
     a 10% LRU buffer absorbs most of the TP cost because the TP queries
     revisit the pages the NN query just loaded.  Reproduction: TPNN
     NA 12-20x the NN query; with the buffer the TPNN page faults drop
     by an order of magnitude — who wins and why is identical.""",
     [fig27.run_fig27]),
    ("Figure 28 — NN cost vs k (GR / NA)",
     """Paper: the number of TP queries stays ~12 regardless of k but
     each becomes more expensive, so NA grows with k; the buffer absorbs
     most of it.  Reproduction: same growth and same buffer effect.""",
     [lambda: fig28.run_fig28("GR"), lambda: fig28.run_fig28("NA")]),
    ("Figure 29 — window validity-region area (uniform)",
     """Paper: area decreases with both N and qs; estimate accurate.
     Reproduction: measured vs estimated agree within a few percent at
     every N and qs — the sweeping-region integral is the best-matching
     model in the whole reproduction.""",
     [fig29.run_fig29a, fig29.run_fig29b]),
    ("Figure 30 — window validity-region area (GR / NA)",
     """Paper: trends as in Fig 29b; sizes "rather large"
     (9,100 m^2 - 1.7e6 m^2 for GR), showing practical applicability.
     Reproduction: same magnitudes.  Two systematic effects of the
     setup are visible: (i) on GR the largest windows (10,000 km^2 on an
     800 km universe) frequently overhang the data-space boundary, which
     legitimately *enlarges* their validity regions (uptick in the last
     row); (ii) for windows much smaller than a histogram bucket (70 km
     buckets on NA) the boundary density is diluted by the bucket, so
     the estimate errs high — the error direction the paper's model
     shares, amplified here by our tighter synthetic metro clusters.""",
     [lambda: fig30.run_fig30("GR"), lambda: fig30.run_fig30("NA")]),
    ("Figure 31 — window influence sets (uniform)",
     """Paper: ~2 inner + ~2 outer influence objects under all settings
     (an outer cut replaces an inner edge, Figure 33).  Reproduction:
     1.5-2.5 of each; totals well under 6.""",
     [fig31.run_fig31a, fig31.run_fig31b]),
    ("Figure 32 — window influence sets (GR / NA)",
     """Paper: same on real data.  Reproduction: same.""",
     [lambda: fig32.run_fig32("GR"), lambda: fig32.run_fig32("NA")]),
    ("Figure 34 — window-query server cost (uniform)",
     """Paper: two window queries per location-based query; with a 10%
     LRU buffer the influence query causes almost no page faults
     (0.04-0.09 per query).  Reproduction: influence-query NA comparable
     to the result query, influence-query PA near zero — same story.""",
     [fig34.run_fig34]),
    ("Figure 35 — window-query page accesses (GR / NA)",
     """Paper: influence query nearly free except qs=10,000 km^2 on GR,
     where the buffer cannot hold the query neighbourhood.
     Reproduction: identical pattern, including the GR large-window
     exception.""",
     [lambda: fig35.run_fig35("GR"), lambda: fig35.run_fig35("NA")]),
    ("Ablation — vertex selection policy",
     """Not in the paper (it picks "any" vertex; Lemma 3.2 proves the
     count n_inf + n_v regardless).  Measured: every policy finds the
     same influence set and the same region; TP-query counts differ by
     well under one query on average.""",
     [ab_vertex.run_vertex_order_ablation]),
    ("Ablation — kNN algorithm",
     """[HS99] best-first vs [RKV95] depth-first for step (i):
     best-first never reads more nodes (it is I/O optimal).""",
     [ab_nn.run_nn_algorithm_ablation]),
    ("Ablation — conservative vs exact window region",
     """The paper argues corner-overlapping outer objects are rare, so
     the shipped rectangle gives up little area (Figure 33).  Measured:
     the rectangle retains the large majority of the exact region's
     area at every window size.""",
     [ab_cons.run_conservative_ablation]),
    ("Ablation — end-to-end protocol comparison",
     """The system-level claim of the introduction: validity regions
     save most server round-trips for realistic speeds, beat [SR01]
     (which needs a well-chosen m) and beat TP queries (whose validity
     dies with every turn).  At extreme speeds all protocols degrade to
     naive — also visible below.""",
     [ab_base.run_baseline_comparison]),
    ("Ablation — LRU buffer size",
     """The paper fixes the buffer at 10% of the tree.  Measured: the
     TP queries' locality is so strong that even a 1% buffer removes
     ~95% of their page faults; 10% is already deep in diminishing
     returns, which makes the paper's conclusion robust to the
     parameter choice.""",
     [ab_buffer.run_buffer_ablation]),
    ("Extension (§7) — circular region queries",
     """Future work in the paper.  Implemented with conservative
     validity disks (24-byte payload, one distance check per update);
     at most one inner + one outer influence object bound each disk.""",
     [ext_region.run_region_queries]),
    ("Extension (§7) — incremental delta transmission",
     """Future work in the paper: "the transfer of the delta can
     dramatically reduce the transmission overhead".  Measured: the
     delta protocol ships the same answers with large byte savings for
     overlapping re-queries.""",
     [ext_delta.run_incremental_delta]),
]

HEADER = """\
# EXPERIMENTS — paper vs. measured

Generated by ``python benchmarks/generate_report.py`` at scale
``REPRO_SCALE={scale}``.  Every table below is the output of the
corresponding ``benchmarks/bench_*.py`` module run against the current
code; the prose records what the paper reports for the same figure and
how the reproduction compares.  Absolute magnitudes are not expected to
match the 2003 testbed — the *shape* (who wins, by what factor, where
the crossovers and anomalies fall) is the reproduction target.

Datasets: uniform points exactly as in the paper; **GR** and **NA** are
deterministic synthetic stand-ins with the original cardinalities,
universes and skew (the 2003 files are no longer distributed — see
DESIGN.md, "Substitutions").

Summary of the match:

| Exhibit | Paper's claim | Reproduced? |
|---|---|---|
| Fig 22-23 | V(q) area ~ A/((2k-1)N), estimate accurate | yes (size-bias factor noted) |
| Fig 24 | ~6 edges | yes |
| Fig 25-26 | \\|S_inf\\| ~6, drops to ~4 for k>=10 | yes |
| Fig 27-28 | TPNN ~12x NN in NA; buffer absorbs it | yes |
| Fig 29-30 | window V(q) area model accurate | yes (within a few % on uniform) |
| Fig 31-32 | ~2 inner + ~2 outer influence objects | yes |
| Fig 34-35 | influence query nearly free with buffer; GR 10,000 km^2 exception | yes, incl. the exception |
| §7 extensions | region queries, delta transmission | implemented + measured |

"""


#: Recorded paper-scale (N up to 1M, 500-query workloads) spot checks,
#: reproduced verbatim from `REPRO_SCALE=paper python benchmarks/...`
#: runs.  They are embedded statically because the full paper-scale
#: sweep takes hours; rerun any of them with REPRO_SCALE=paper to
#: refresh.
PAPER_SCALE_APPENDIX = """\
## Appendix — paper-scale spot checks

Selected benches rerun at ``REPRO_SCALE=paper`` (the paper's exact
setup: cardinalities to 1,000,000 and 500-query workloads):

```text
=== Figure 22a: area of V(q) vs N (uniform, k=1) (REPRO_SCALE=paper) ===
      N     actual  estimated
-----------------------------
  10000  9.916e-05  1.000e-04
  30000  3.398e-05  3.333e-05
 100000  1.058e-05  1.000e-05
 300000  3.907e-06  3.333e-06
1000000  1.268e-06  1.000e-06

=== Figure 27a: node accesses vs N (uniform, k=1) (REPRO_SCALE=paper) ===
      N  NN query  TPNN queries   total
---------------------------------------
  10000     2.056        37.158  39.214
  30000     3.154        50.662  53.816
 100000     3.128        54.640  57.768
 300000     3.256        58.502  61.758
1000000     3.250        61.492  64.742

=== Figure 27b: page accesses vs N (10% LRU buffer) (REPRO_SCALE=paper) ===
      N  NN query  TPNN queries  total
--------------------------------------
  10000     0.946         1.818  2.764
  30000     1.018         1.860  2.878
 100000     1.000         1.968  2.968
 300000     1.042         2.104  3.146
1000000     1.142         2.240  3.382

=== Figure 31a: window |S_inf| vs N (qs=0.1%) (REPRO_SCALE=paper) ===
      N  inner  outer  total
----------------------------
  10000  1.884  2.006  3.890
  30000  2.012  1.952  3.964
 100000  1.904  2.088  3.992
 300000  2.026  1.970  3.996
1000000  2.030  1.964  3.994
```

At 500-query precision the influence sets converge to the paper's
"two inner and two outer" almost exactly, and the model error of the
k=1 validity-region area stays a flat ~1.2x (the size-bias factor)
across two orders of magnitude of cardinality.
"""


def main() -> None:
    out_path = os.path.join(os.path.dirname(__file__), os.pardir,
                            "EXPERIMENTS.md")
    parts = [HEADER.format(scale=SCALE)]
    for title, commentary, runners in SECTIONS:
        print(f"[report] {title} ...", file=sys.stderr, flush=True)
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            for run in runners:
                run()
        body = textwrap.dedent(commentary).strip()
        body = " ".join(line.strip() for line in body.splitlines())
        parts.append(f"## {title}\n\n{body}\n")
        parts.append("```text" + buffer.getvalue() + "```\n")
    parts.append(PAPER_SCALE_APPENDIX)
    with open(os.path.abspath(out_path), "w") as fh:
        fh.write("\n".join(parts))
    print(f"[report] wrote {os.path.abspath(out_path)}", file=sys.stderr)


if __name__ == "__main__":
    main()
