"""Figure 28: cost of location-based NN queries vs k (GR and NA).

Node accesses and page accesses (10 % LRU buffer) per query, split into
the initial kNN query and the TPkNN queries.  The number of TP queries
stays ~12 regardless of k, but each one grows more expensive with k.
"""

from common import CONFIG, REAL_DATASETS, print_table, query_workload, run_once
from repro.core import compute_nn_validity


def run_fig28(name):
    dataset_fn, tree_fn, _, universe = REAL_DATASETS[name]
    tree = tree_fn()
    queries = query_workload(dataset_fn(), universe, CONFIG.num_queries_real)
    rows_na, rows_pa = [], []
    for k in CONFIG.ks:
        tree.attach_lru_buffer(0.1)
        tree.disk.cold_restart()
        for q in queries:
            compute_nn_validity(tree, q, k=k, universe=universe)
        nq = len(queries)
        na = tree.disk.stats.node_accesses_by_phase()
        pa = tree.disk.stats.page_faults_by_phase()
        rows_na.append((k, na.get("nn", 0) / nq, na.get("tpnn", 0) / nq))
        rows_pa.append((k, pa.get("nn", 0) / nq, pa.get("tpnn", 0) / nq))
        tree.disk.set_buffer(0)
    print_table(f"Figure 28 ({name}): node accesses vs k",
                ["k", "NN query", "TPNN queries"], rows_na)
    print_table(f"Figure 28 ({name}): page accesses vs k (10% LRU)",
                ["k", "NN query", "TPNN queries"], rows_pa)
    return rows_na, rows_pa


def test_fig28_gr(benchmark):
    rows_na, rows_pa = run_once(benchmark, lambda: run_fig28("GR"))
    na_by_k = {k: nn + tp for k, nn, tp in rows_na}
    # Node accesses increase with k (each TP query costs more).
    assert na_by_k[max(CONFIG.ks)] > na_by_k[1]
    # Buffer absorbs most of the TP cost at every k.
    for (k, _, na_tp), (_, _, pa_tp) in zip(rows_na, rows_pa):
        assert pa_tp < 0.6 * na_tp


def test_fig28_na(benchmark):
    rows_na, rows_pa = run_once(benchmark, lambda: run_fig28("NA"))
    na_by_k = {k: nn + tp for k, nn, tp in rows_na}
    assert na_by_k[max(CONFIG.ks)] > na_by_k[1]


if __name__ == "__main__":
    run_fig28("GR")
    run_fig28("NA")
