"""Figure 35: page accesses of location-based window queries vs qs
(GR and NA, 10 % LRU buffer), split into result query and influence
query.  The influence query is almost free except for very large
windows on the small GR dataset, where the buffer cannot hold the whole
query neighbourhood (the paper's qs = 10 000 km^2 observation)."""

import math

from common import CONFIG, REAL_DATASETS, print_table, query_workload, run_once
from repro.core import compute_window_validity

KM2_TO_M2 = 1_000_000.0


def run_fig35(name):
    dataset_fn, tree_fn, _, universe = REAL_DATASETS[name]
    tree = tree_fn()
    queries = query_workload(dataset_fn(), universe, CONFIG.num_queries_real)
    rows = []
    for qs_km2 in CONFIG.real_window_areas_km2:
        side = math.sqrt(qs_km2 * KM2_TO_M2)
        tree.attach_lru_buffer(0.1)
        tree.disk.cold_restart()
        for q in queries:
            compute_window_validity(tree, q, side, side, universe=universe)
        nq = len(queries)
        pa = tree.disk.stats.page_faults_by_phase()
        rows.append((f"{qs_km2:g}", pa.get("result", 0) / nq,
                     pa.get("influence", 0) / nq))
        tree.disk.set_buffer(0)
    print_table(f"Figure 35 ({name}): window page accesses vs qs (10% LRU)",
                ["qs(km^2)", "result query", "influence query"], rows)
    return rows


def _check(rows):
    # The influence query rides the buffer — except possibly for the
    # largest windows, where the buffer cannot hold the whole query
    # neighbourhood (the paper's own qs=10,000 km^2 observation on GR).
    for _, pa_res, pa_inf in rows[:-1]:
        assert pa_inf <= max(pa_res, 1.0)
    return rows


def test_fig35_gr(benchmark):
    _check(run_once(benchmark, lambda: run_fig35("GR")))


def test_fig35_na(benchmark):
    _check(run_once(benchmark, lambda: run_fig35("NA")))


if __name__ == "__main__":
    run_fig35("GR")
    run_fig35("NA")
