"""Ablation: how much area does the conservative rectangle give up?

The paper ships a rectangle instead of the exact (rectilinear) validity
region (Figure 19/33), arguing that corner-overlapping outer objects —
the only case where the rectangle loses area — are rare.  This bench
measures the retained-area ratio.
"""

import math

from common import (
    CONFIG,
    geometric_mean,
    print_table,
    query_workload,
    run_once,
    uniform_dataset,
    uniform_tree,
)
from repro.core import compute_window_validity
from repro.datasets.synthetic import UNIT_UNIVERSE


def run_conservative_ablation():
    n = CONFIG.default_n
    tree = uniform_tree(n)
    queries = query_workload(uniform_dataset(n), UNIT_UNIVERSE,
                             CONFIG.num_queries)
    rows = []
    for qs in CONFIG.window_fractions:
        side = math.sqrt(qs)
        ratios = []
        non_rect = 0
        for q in queries:
            res = compute_window_validity(tree, q, side, side,
                                          universe=UNIT_UNIVERSE)
            exact = res.exact_region.area()
            if exact > 0:
                ratios.append(res.conservative_region.area() / exact)
            if res.conservative_region.area() < exact * (1 - 1e-9):
                non_rect += 1
        rows.append((f"{qs:.2%}", geometric_mean(ratios),
                     non_rect / len(queries)))
    print_table("Ablation: conservative vs exact window validity region",
                ["qs", "area retained (geo-mean)", "non-rect fraction"],
                rows)
    return rows


def test_conservative_region(benchmark):
    rows = run_once(benchmark, run_conservative_ablation)
    for _, retained, _ in rows:
        # The rectangle keeps the lion's share of the exact region.
        assert retained > 0.5


if __name__ == "__main__":
    run_conservative_ablation()
