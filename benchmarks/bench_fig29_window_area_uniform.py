"""Figure 29: area of V(q) for window queries (uniform data).

(a) window size fixed at qs = 0.1 % of the universe, N swept;
(b) N fixed, qs swept.  Both shrink with density and with window size,
and both are printed against the sweeping-region estimate
(eqs. 5-4 / 5-5).
"""

import math

from common import (
    CONFIG,
    print_table,
    query_workload,
    run_once,
    uniform_dataset,
    uniform_tree,
)
from repro.analysis import expected_window_validity_area
from repro.core import compute_window_validity
from repro.datasets.synthetic import UNIT_UNIVERSE

FIXED_QS = 0.001  # 0.1% of the data space, the paper's Figure 29a setting


def _mean_area(tree, queries, side):
    areas = [
        compute_window_validity(tree, q, side, side,
                                universe=UNIT_UNIVERSE).exact_region.area()
        for q in queries
    ]
    return sum(areas) / len(areas)


def run_fig29a():
    side = math.sqrt(FIXED_QS)
    rows = []
    for n in CONFIG.uniform_cardinalities:
        tree = uniform_tree(n)
        queries = query_workload(uniform_dataset(n), UNIT_UNIVERSE,
                                 CONFIG.num_queries)
        actual = _mean_area(tree, queries, side)
        estimated = expected_window_validity_area(n, side, side, 1.0)
        rows.append((n, actual, estimated))
    print_table("Figure 29a: window V(q) area vs N (qs=0.1%)",
                ["N", "actual", "estimated"], rows)
    return rows


def run_fig29b():
    n = CONFIG.default_n
    tree = uniform_tree(n)
    queries = query_workload(uniform_dataset(n), UNIT_UNIVERSE,
                             CONFIG.num_queries)
    rows = []
    for qs in CONFIG.window_fractions:
        side = math.sqrt(qs)
        actual = _mean_area(tree, queries, side)
        estimated = expected_window_validity_area(n, side, side, 1.0)
        rows.append((f"{qs:.2%}", actual, estimated))
    print_table(f"Figure 29b: window V(q) area vs qs (N={n})",
                ["qs", "actual", "estimated"], rows)
    return rows


def test_fig29a(benchmark):
    rows = run_once(benchmark, run_fig29a)
    areas = [r[1] for r in rows]
    assert all(a > b for a, b in zip(areas, areas[1:]))  # drops with N
    for _, actual, est in rows:
        assert est / 5 < actual < est * 5  # estimate tracks measurement


def test_fig29b(benchmark):
    rows = run_once(benchmark, run_fig29b)
    areas = [r[1] for r in rows]
    assert all(a > b for a, b in zip(areas, areas[1:]))  # drops with qs


if __name__ == "__main__":
    run_fig29a()
    run_fig29b()
