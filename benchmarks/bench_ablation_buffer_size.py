"""Ablation: sensitivity to the LRU buffer size.

The paper fixes the buffer at 10 % of the R-tree and reports that it
absorbs most of the TPNN cost.  This bench sweeps the fraction to show
how much buffer that conclusion actually needs: the TP queries revisit
the neighbourhood the initial NN query loaded, so even a tiny buffer
captures most of the locality.
"""

from common import (
    CONFIG,
    print_table,
    query_workload,
    run_once,
    uniform_dataset,
    uniform_tree,
)
from repro.core import compute_nn_validity
from repro.datasets.synthetic import UNIT_UNIVERSE

FRACTIONS = (0.0, 0.01, 0.05, 0.1, 0.25, 0.5)


def run_buffer_ablation():
    n = CONFIG.default_n
    tree = uniform_tree(n)
    queries = query_workload(uniform_dataset(n), UNIT_UNIVERSE,
                             CONFIG.num_queries)
    rows = []
    for fraction in FRACTIONS:
        if fraction > 0.0:
            pages = tree.attach_lru_buffer(fraction)
        else:
            tree.disk.set_buffer(0)
            pages = 0
        tree.disk.cold_restart()
        for q in queries:
            compute_nn_validity(tree, q, k=1, universe=UNIT_UNIVERSE)
        nq = len(queries)
        pa = tree.disk.stats.page_faults_by_phase()
        rows.append((f"{fraction:.0%}", pages,
                     pa.get("nn", 0) / nq, pa.get("tpnn", 0) / nq))
    tree.disk.set_buffer(0)
    print_table(
        f"Ablation: LRU buffer size (uniform, N={n}, k=1)",
        ["buffer", "pages", "PA: NN query", "PA: TPNN queries"], rows)
    return rows


def test_buffer_size(benchmark):
    rows = run_once(benchmark, run_buffer_ablation)
    by_fraction = {f: tp for f, _, _, tp in rows}
    # No buffer: TPNN page accesses equal their node accesses (dozens).
    assert by_fraction["0%"] > 10.0
    # The paper's 10% is already in the diminishing-returns regime.
    assert by_fraction["10%"] < 0.2 * by_fraction["0%"]
    assert by_fraction["50%"] <= by_fraction["10%"]
    # Even 1% captures most of the TP locality.
    assert by_fraction["1%"] < 0.5 * by_fraction["0%"]


if __name__ == "__main__":
    run_buffer_ablation()
