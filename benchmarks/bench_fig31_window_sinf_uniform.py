"""Figure 31: window-query influence sets (uniform data).

Split into inner and outer influence objects; the paper finds roughly
two of each under all settings, so the validity region's network cost
is negligible.
"""

import math

from common import (
    CONFIG,
    print_table,
    query_workload,
    run_once,
    uniform_dataset,
    uniform_tree,
)
from repro.core import compute_window_validity
from repro.datasets.synthetic import UNIT_UNIVERSE

FIXED_QS = 0.001


def _mean_influence(tree, queries, side):
    inner = outer = 0
    for q in queries:
        res = compute_window_validity(tree, q, side, side,
                                      universe=UNIT_UNIVERSE)
        inner += len(res.inner_influence)
        outer += len(res.outer_influence)
    return inner / len(queries), outer / len(queries)


def run_fig31a():
    side = math.sqrt(FIXED_QS)
    rows = []
    for n in CONFIG.uniform_cardinalities:
        tree = uniform_tree(n)
        queries = query_workload(uniform_dataset(n), UNIT_UNIVERSE,
                                 CONFIG.num_queries)
        inner, outer = _mean_influence(tree, queries, side)
        rows.append((n, inner, outer, inner + outer))
    print_table("Figure 31a: window |S_inf| vs N (qs=0.1%)",
                ["N", "inner", "outer", "total"], rows)
    return rows


def run_fig31b():
    n = CONFIG.default_n
    tree = uniform_tree(n)
    queries = query_workload(uniform_dataset(n), UNIT_UNIVERSE,
                             CONFIG.num_queries)
    rows = []
    for qs in CONFIG.window_fractions:
        side = math.sqrt(qs)
        inner, outer = _mean_influence(tree, queries, side)
        rows.append((f"{qs:.2%}", inner, outer, inner + outer))
    print_table(f"Figure 31b: window |S_inf| vs qs (N={n})",
                ["qs", "inner", "outer", "total"], rows)
    return rows


def test_fig31a(benchmark):
    rows = run_once(benchmark, run_fig31a)
    for _, inner, outer, total in rows:
        assert 0.5 < inner < 3.5   # "about two inner ..."
        assert 0.5 < outer < 3.5   # "... and two outer"
        assert total < 6.0


def test_fig31b(benchmark):
    rows = run_once(benchmark, run_fig31b)
    for _, inner, outer, total in rows:
        assert total < 6.0


if __name__ == "__main__":
    run_fig31a()
    run_fig31b()
