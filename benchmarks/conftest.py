"""Pytest wiring for the experiment benches."""

import os
import sys

# Make `import common` work both under pytest and as plain scripts.
sys.path.insert(0, os.path.dirname(__file__))
