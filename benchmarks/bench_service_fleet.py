"""Concurrent-fleet benchmark: the instrumented query service under load.

Not a figure of the paper — this exercises the ROADMAP direction
(serving many mobile clients at once): a ThreadPoolExecutor-driven
fleet of simulated clients issues per-tick batches of position updates
through :class:`repro.service.service.QueryService`, and the run ends
with the service's ``stats_snapshot()``: per-query-type latency
histograms (p50/p95/p99), bytes on the wire, the client cache-hit
ratio, and phase-attributed node accesses.
"""

from time import perf_counter

from common import CONFIG, SCALE, dump_snapshot, fleet_run, print_table, \
    run_once, uniform_tree, write_bench_record

NUM_CLIENTS = 16 if SCALE == "smoke" else 64
TICKS = 25 if SCALE == "smoke" else 200
WORKERS = 8


def run_fleet():
    tree = uniform_tree(CONFIG.uniform_cardinalities[0])
    start = perf_counter()
    report, service = fleet_run(
        tree, num_clients=NUM_CLIENTS, ticks=TICKS,
        max_workers=WORKERS, seed=7, incremental_share=0.25,
        return_service=True)
    elapsed = perf_counter() - start
    rows = []
    metrics = {}
    for kind, count in sorted(report.mix.items()):
        # Merge the labeled latency series across the degraded dimension.
        h = service.metrics.histogram_merged(
            "service.latency_ms", query_kind=kind)
        rows.append((kind, count, h["count"], h["p50"], h["p95"], h["p99"]))
        for q in ("p50", "p95", "p99"):
            metrics[f"{kind}.{q}_ms"] = h[q]
    print_table(
        f"Service fleet: {NUM_CLIENTS} clients x {TICKS} ticks, "
        f"{WORKERS} threads",
        ["kind", "clients", "queries", "p50_ms", "p95_ms", "p99_ms"], rows)
    dump_snapshot(report.snapshot["service"], "service summary")
    queries = report.snapshot["service"]["queries"]
    metrics.update({
        "queries": queries,
        "elapsed_s": elapsed,
        "throughput_qps": queries / elapsed if elapsed else 0.0,
        "node_accesses": report.snapshot["disk"]["total_node_accesses"],
        "cache_hit_ratio": report.cache_hit_ratio,
    })
    write_bench_record("service_fleet", metrics, context={
        "clients": NUM_CLIENTS, "ticks": TICKS, "workers": WORKERS})
    return report


def test_service_fleet(benchmark):
    report = run_once(benchmark, run_fleet)
    stats = report.stats
    assert stats.position_updates == NUM_CLIENTS * TICKS
    # Every update was either answered from a validity region or by the
    # server — the protocol invariant the paper's motivation rests on.
    assert stats.cache_answers + stats.server_queries == stats.position_updates
    assert report.snapshot["service"]["bytes_on_wire"] > 0


if __name__ == "__main__":
    run_fleet()
