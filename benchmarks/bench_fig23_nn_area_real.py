"""Figure 23: area of V(q) vs k on the real-like datasets (GR, NA).

The estimate uses the Minskew histogram (500 buckets from 10 000 cells,
the paper's configuration): the local density around each query point
replaces the global one in the order-k cell formula (eq. 5-7).
Areas are in square metres, as in the paper's plots.
"""

from common import CONFIG, REAL_DATASETS, print_table, query_workload, run_once
from repro.analysis import expected_nn_validity_area_hist
from repro.core import compute_nn_validity


def run_fig23(name):
    dataset_fn, tree_fn, hist_fn, universe = REAL_DATASETS[name]
    tree = tree_fn()
    hist = hist_fn()
    queries = query_workload(dataset_fn(), universe, CONFIG.num_queries_real)
    rows = []
    for k in CONFIG.ks:
        actual = sum(
            compute_nn_validity(tree, q, k=k, universe=universe).region.area()
            for q in queries) / len(queries)
        estimated = sum(
            expected_nn_validity_area_hist(hist, q, k)
            for q in queries) / len(queries)
        rows.append((k, actual, estimated))
    print_table(f"Figure 23 ({name}): area of V(q) vs k  [m^2]",
                ["k", "actual", "estimated(Minskew)"], rows)
    return rows


def test_fig23_gr(benchmark):
    rows = run_once(benchmark, lambda: run_fig23("GR"))
    areas = [r[1] for r in rows]
    # Small skewed workloads are noisy per-k; the overall trend must hold.
    assert areas[-1] < areas[0]
    # Estimate within two orders of magnitude at every k (log-scale match).
    for _, actual, est in rows:
        assert est / 100 < actual < est * 100


def test_fig23_na(benchmark):
    rows = run_once(benchmark, lambda: run_fig23("NA"))
    areas = [r[1] for r in rows]
    assert areas[-1] < areas[0]


if __name__ == "__main__":
    run_fig23("GR")
    run_fig23("NA")
