"""Replicated-fleet chaos benchmark: correctness and availability under
disk faults, a mid-run replica crash, and 2x admission overload.

Not a figure of the paper — this is the acceptance gate of the
replicated serving tier:

* **Chaos phase** — a 3-replica :class:`~repro.service.replica.ReplicaSet`
  (bounded-stale reads, per-replica breakers) serves an oracle-checked
  kNN workload with interleaved inserts/deletes while 5% of queries
  hit an injected disk fault (the per-read failure rate is calibrated
  against the measured reads-per-query), and one replica is
  hard-killed halfway through.  Every served answer is compared against
  a brute-force oracle over the *fresh* dataset — stale-served answers
  included, which is exactly the
  :func:`~repro.service.staleness.shrunk_stale_region` soundness
  contract.  The gate: **zero** incorrect answers, availability >= 99%.
  (Faults target the query phases ``nn``/``tpnn``/``result``/
  ``influence``; the mutation path stays reliable so the oracle is
  exact — serving correctness is what this phase measures.)

* **Overload phase** — a fresh admission-gated service
  (``max_queue_depth=0``: every excess request is a queue-full fast
  reject) takes 2x its capacity in offered load.  The gate: rejects are
  decided in under 1 ms (p99, client-side), and the latency of
  *accepted* queries stays within 2x of the unloaded p99.

Both phases append flat metrics to the schema-versioned
``BENCH_fleet_replicas.json`` regression trail (see
``benchmarks/compare.py``; availability is guarded higher-is-better).
"""

from __future__ import annotations

import json
import math
import random
import sys
import threading
from time import perf_counter, sleep

import pytest

from common import SCALE, print_table, run_once, write_bench_record

from repro.core.api import KNNRequest
from repro.geometry import Rect
from repro.service import (
    AdmissionConfig,
    AdmissionRejectedError,
    BreakerConfig,
    QueryService,
    ReplicaConfig,
    ReplicaSet,
    ResilienceConfig,
    RetryBudgetConfig,
    RetryPolicy,
    build_service,
)
from repro.storage import FaultPlan, inject_faults

UNIT = Rect(0.0, 0.0, 1.0, 1.0)

REPLICAS = 3
#: Fault incidence per *query*: 5% of queries hit a disk fault.  The
#: simulator faults per page read, so the per-read rate is calibrated
#: against the measured reads-per-query (a kNN + TPNN influence pass
#: touches dozens of pages; 5% per read would fail ~85% of queries —
#: no replication factor survives that, and it is not what "5% disk
#: faults" means for a serving fleet).
FAULT_INCIDENCE = 0.05
MAX_STALE = 4
K = 3

if SCALE == "smoke":
    CHAOS_N, CHAOS_QUERIES = 1_500, 360
    OVERLOAD_N, UNLOADED_QUERIES, OVERLOAD_QUERIES = 8_000, 150, 150
else:
    CHAOS_N, CHAOS_QUERIES = 10_000, 2_000
    OVERLOAD_N, UNLOADED_QUERIES, OVERLOAD_QUERIES = 50_000, 500, 500

#: Disk phases queries charge reads to (updates use none of these).
QUERY_PHASES = ("nn", "tpnn", "result", "influence")


def _calibrated_read_rate(points, rng, queries: int = 40) -> float:
    """The per-read failure rate giving ``FAULT_INCIDENCE`` per query,
    measured against a throwaway server running the bench workload."""
    from repro.core.server import LocationServer

    probe = LocationServer.from_points(points, universe=UNIT, capacity=128)
    for _ in range(queries):
        probe.answer(KNNRequest((rng.random(), rng.random()), k=K))
    reads = sum(probe.node_accesses_by_phase().values())
    avg = max(1.0, reads / queries)
    return 1.0 - (1.0 - FAULT_INCIDENCE) ** (1.0 / avg)


def _brute_knn_set(fresh, q, k):
    """Oracle kNN oid set; None when the k-th distance is tied."""
    ranked = sorted((math.dist(xy, q), oid) for oid, xy in fresh.items())
    if len(ranked) > k and ranked[k][0] - ranked[k - 1][0] < 1e-9:
        return None
    return {oid for _, oid in ranked[:k]}


def _quantile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


# ----------------------------------------------------------------------
# phase 1: chaos — faults + mid-run crash, oracle-checked
# ----------------------------------------------------------------------
def run_chaos(seed: int = 20030609):
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(CHAOS_N)]
    fresh = {i: xy for i, xy in enumerate(points)}

    # The ejection threshold is set so random faults do not trip it
    # but the killed replica — failing every single attempt — trips
    # within a dozen queries.
    rs = ReplicaSet.from_points(
        points, replicas=REPLICAS, universe=UNIT, capacity=128,
        config=ReplicaConfig(
            replication_lag=2, default_max_stale=MAX_STALE,
            breaker=BreakerConfig(failure_threshold=10,
                                  reset_timeout_s=0.05)))
    service = QueryService(rs, resilience=ResilienceConfig(
        retry=RetryPolicy(max_attempts=6, base_delay_s=0.0005,
                          max_delay_s=0.005),
        breaker=None,  # per-replica breakers handle ejection
        retry_budget=RetryBudgetConfig(max_retries=512, window_s=1.0),
        seed=seed))
    read_rate = _calibrated_read_rate(points, random.Random(seed + 1))
    plan = FaultPlan(seed=seed,
                     phase_failure_rates={p: read_rate
                                          for p in QUERY_PHASES})
    for replica in rs.replicas:
        inject_faults(replica.server.tree, plan)

    victim = 1  # a non-primary: mutations keep flowing after the crash
    next_oid = 1_000_000
    inserted = []
    attempted = served = incorrect = errors = stale_hits = 0
    t0 = perf_counter()
    for i in range(CHAOS_QUERIES):
        if i == CHAOS_QUERIES // 2:
            rs.kill(victim)  # hard crash, never revived
        if i % 48 == 47:  # the background health check a deployment runs
            rs.probe_health()
        if i % 8 == 3:  # interleave mutations (~12% of ticks)
            if inserted and rng.random() < 0.4:
                oid = inserted.pop(rng.randrange(len(inserted)))
                x, y = fresh.pop(oid)
                service.delete_object(oid, x, y)
            else:
                oid, next_oid = next_oid, next_oid + 1
                x, y = rng.random(), rng.random()
                service.insert_object(oid, x, y)
                fresh[oid] = (x, y)
                inserted.append(oid)
        q = (rng.random(), rng.random())
        attempted += 1
        try:
            resp = service.answer(KNNRequest(q, k=K, max_stale=MAX_STALE))
        except Exception:
            errors += 1
            continue
        served += 1
        if getattr(resp, "staleness", 0):
            stale_hits += 1
        oracle = _brute_knn_set(fresh, q, K)
        if oracle is not None and {e.oid for e in resp.result} != oracle:
            incorrect += 1
    elapsed = perf_counter() - t0

    counters = service.metrics.snapshot()["counters"]
    snap = rs.snapshot()
    service.close()
    return {
        "queries": attempted,
        "served": served,
        "errors": errors,
        "incorrect": incorrect,
        "availability": served / attempted,
        "stale_served": stale_hits,
        "failovers": rs.failovers,
        "retries": counters.get("service.retries", 0),
        "victim_state": snap["replicas"][victim]["state"],
        "elapsed_s": elapsed,
    }


# ----------------------------------------------------------------------
# phase 2: overload — 2x offered load through the admission gate
# ----------------------------------------------------------------------
def run_overload(seed: int = 4096):
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(OVERLOAD_N)]
    service = build_service(
        points, universe=UNIT,
        resilience=ResilienceConfig(
            breaker=None,
            admission=AdmissionConfig(
                max_concurrency=1, max_queue_depth=0,
                reduce_at=4.0, cache_only_at=6.0, reject_at=8.0)))

    def one_query():
        q = (rng.random(), rng.random())
        return service.answer(KNNRequest(q, k=10))

    # Unloaded baseline: sequential, every request is admitted.
    unloaded_ms = []
    for _ in range(UNLOADED_QUERIES):
        t0 = perf_counter()
        one_query()
        unloaded_ms.append((perf_counter() - t0) * 1e3)

    # 2x overload: two clients against a single execution slot.  The
    # gate has no queue, so the losing client is fast-rejected; a real
    # client backs off briefly before re-offering.
    accepted_ms, reject_ms = [], []
    lock = threading.Lock()

    def client(client_seed: int):
        crng = random.Random(client_seed)
        for _ in range(OVERLOAD_QUERIES):
            q = (crng.random(), crng.random())
            t0 = perf_counter()
            try:
                service.answer(KNNRequest(q, k=10))
            except AdmissionRejectedError:
                dt = (perf_counter() - t0) * 1e3
                with lock:
                    reject_ms.append(dt)
                sleep(0.0002)  # client backoff after a shed
                continue
            dt = (perf_counter() - t0) * 1e3
            with lock:
                accepted_ms.append(dt)

    threads = [threading.Thread(target=client, args=(seed + i,))
               for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    admission = service.admission.snapshot()
    service.close()
    return {
        "unloaded_p99_ms": _quantile(unloaded_ms, 0.99),
        "accepted_p99_ms": _quantile(accepted_ms, 0.99),
        "fast_reject_p99_ms": _quantile(reject_ms, 0.99),
        "accepted": len(accepted_ms),
        "rejected": len(reject_ms),
        "rejected_queue_full": admission["rejected_queue_full"],
    }


# ----------------------------------------------------------------------
# the bench
# ----------------------------------------------------------------------
def run_all(seed: int = 20030609):
    chaos = run_chaos(seed)
    overload = run_overload()
    print_table(
        f"Fleet chaos: {REPLICAS} replicas, {FAULT_INCIDENCE:.0%} per-query "
        f"disk faults, replica 1 killed at query {CHAOS_QUERIES // 2}",
        ["queries", "served", "errors", "incorrect", "availability",
         "stale", "failovers", "retries"],
        [(chaos["queries"], chaos["served"], chaos["errors"],
          chaos["incorrect"], chaos["availability"], chaos["stale_served"],
          chaos["failovers"], chaos["retries"])])
    print_table(
        "Fleet overload: 2x offered load, queue depth 0",
        ["unloaded_p99", "accepted_p99", "reject_p99", "accepted",
         "rejected"],
        [(overload["unloaded_p99_ms"], overload["accepted_p99_ms"],
          overload["fast_reject_p99_ms"], overload["accepted"],
          overload["rejected"])])
    metrics = {
        "availability": chaos["availability"],
        "incorrect": chaos["incorrect"],
        "chaos_queries": chaos["queries"],
        "chaos_errors": chaos["errors"],
        "stale_served": chaos["stale_served"],
        "failovers": chaos["failovers"],
        "unloaded_p99_ms": overload["unloaded_p99_ms"],
        "accepted_p99_ms": overload["accepted_p99_ms"],
        "fast_reject_p99_ms": overload["fast_reject_p99_ms"],
        "overload_rejected": overload["rejected"],
    }
    write_bench_record(
        "replicas", metrics,
        context={"replicas": REPLICAS, "fault_incidence": FAULT_INCIDENCE,
                 "max_stale": MAX_STALE, "scale": SCALE},
        prefix="fleet")
    print()
    print(f"=== fleet chaos JSON (REPRO_SCALE={SCALE}) ===")
    print(json.dumps({"chaos": chaos, "overload": overload},
                     indent=2, sort_keys=True))
    sys.stdout.flush()
    return chaos, overload


@pytest.mark.chaos
def test_fleet_chaos_gate(benchmark):
    chaos, overload = run_once(benchmark, run_all)
    # Correctness is never traded for availability.
    assert chaos["incorrect"] == 0
    assert chaos["availability"] >= 0.99
    # The crash was survived, not avoided: traffic really failed over.
    assert chaos["failovers"] >= 1
    assert chaos["victim_state"] == "down"
    # Overload gate: sheds decide fast, accepted queries stay fast.
    assert overload["rejected"] > 0
    assert overload["fast_reject_p99_ms"] < 1.0
    # 0.5 ms absolute grace absorbs scheduler jitter on sub-ms queries.
    assert overload["accepted_p99_ms"] <= (
        2.0 * overload["unloaded_p99_ms"] + 0.5)


if __name__ == "__main__":
    run_all()
