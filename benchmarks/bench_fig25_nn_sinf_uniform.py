"""Figure 25: influence-set size |S_inf| for NN queries (uniform data).

|S_inf| is the network payload of the validity region.  For k = 1 it
equals the edge count (~6); for k >= 10 it drops to ~4 because one
influence object can contribute several edges (one per result object it
pairs with) while the total edge count stays near 6.
"""

from common import (
    CONFIG,
    print_table,
    query_workload,
    run_once,
    uniform_dataset,
    uniform_tree,
)
from repro.core import compute_nn_validity
from repro.datasets.synthetic import UNIT_UNIVERSE


def _mean_sinf(tree, queries, k):
    sizes = [
        compute_nn_validity(tree, q, k=k,
                            universe=UNIT_UNIVERSE).num_influence_objects
        for q in queries
    ]
    return sum(sizes) / len(sizes)


def run_fig25a():
    rows = []
    for n in CONFIG.uniform_cardinalities:
        tree = uniform_tree(n)
        queries = query_workload(uniform_dataset(n), UNIT_UNIVERSE,
                                 CONFIG.num_queries)
        rows.append((n, _mean_sinf(tree, queries, 1)))
    print_table("Figure 25a: |S_inf| vs N (uniform, k=1)",
                ["N", "|S_inf|"], rows)
    return rows


def run_fig25b():
    n = CONFIG.default_n
    tree = uniform_tree(n)
    queries = query_workload(uniform_dataset(n), UNIT_UNIVERSE,
                             CONFIG.num_queries)
    rows = [(k, _mean_sinf(tree, queries, k)) for k in CONFIG.ks]
    print_table(f"Figure 25b: |S_inf| vs k (uniform, N={n})",
                ["k", "|S_inf|"], rows)
    return rows


def test_fig25a(benchmark):
    rows = run_once(benchmark, run_fig25a)
    for _, sinf in rows:
        assert 4.5 < sinf < 8.0  # ~6 for all cardinalities


def test_fig25b(benchmark):
    rows = run_once(benchmark, run_fig25b)
    by_k = dict(rows)
    # |S_inf| decreases towards ~4 for large k.
    assert by_k[max(CONFIG.ks)] < by_k[1]
    assert 3.0 < by_k[max(CONFIG.ks)] < 6.0


if __name__ == "__main__":
    run_fig25a()
    run_fig25b()
