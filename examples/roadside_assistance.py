"""Region queries with validity disks (the paper's §7 extension).

A roadside-assistance app keeps the list of tow trucks within a 5 km
radius of the driver up to date.  The server returns the trucks plus a
conservative validity *disk*: as long as the driver stays inside it,
the list is provably unchanged — a 24-byte region and a single
distance comparison per position update on the client.

The incremental-delta protocol (also §7) is shown on top: when the
driver does leave the disk, the server ships only the trucks that
entered or left the radius.

Run:  python examples/roadside_assistance.py
"""

from repro import LocationServer, MobileClient, RangeRequest, Rect
from repro.datasets.synthetic import gaussian_clusters
from repro.mobility import random_waypoint

CITY = Rect(0.0, 0.0, 40_000.0, 40_000.0)   # 40 km x 40 km, metres
RADIUS = 5_000.0                             # "within 5 km of me"


def main():
    trucks = gaussian_clusters(800, num_clusters=12, spread=0.05,
                               universe=CITY, seed=11)
    server = LocationServer.from_points(trucks, universe=CITY)

    # One response, dissected.
    response = server.answer(RangeRequest((20_000.0, 20_000.0), RADIUS))
    detail = response.detail
    print("one range query:")
    print(f"  trucks within 5 km : {len(response.result)}")
    print(f"  validity disk      : {detail.validity_radius:,.0f} m radius "
          f"({response.region.transfer_bytes()} bytes)")
    binding = detail.inner_influence or detail.outer_influence
    print(f"  bound by           : truck #{binding.oid}" if binding
          else "  bound by           : nothing (empty universe)")
    print()

    # Drive around; compare full vs delta transmission on re-queries.
    route = random_waypoint(CITY, num_steps=300, speed=14.0, dt=2.0, seed=3)
    plain = MobileClient(server)
    delta = MobileClient(server, incremental=True)
    for step in route:
        a = plain.range(step.position, RADIUS)
        # The delta client answers kNN/window incrementally; range
        # queries use the same cached-validity protocol.
        b = delta.range(step.position, RADIUS)
        assert {e.oid for e in a} == {e.oid for e in b}

    print(f"{len(route)} position updates along "
          f"{route.total_distance() / 1000:.1f} km")
    print(f"  server round-trips : {plain.stats.server_queries} "
          f"({plain.stats.query_saving:.0%} served from the validity disk)")
    print(f"  bytes received     : {plain.stats.bytes_received:,}")


if __name__ == "__main__":
    main()
