"""Precompute the whole result timeline for a fixed route.

A transit app knows the bus will drive a fixed straight segment; it can
ask the server *once* for the entire future of "nearest station" —
the ⟨result, interval⟩ timeline of the continuous-query literature the
paper builds on ([TPS02]).  Compare: the validity-region client would
re-query at each region boundary; the timeline rolls all of those into
one offline computation.

Run:  python examples/route_timeline.py
"""

from repro import Rect, bulk_load_str, uniform_points
from repro.queries.continuous import continuous_knn


def main():
    stations = uniform_points(300, seed=12)
    tree = bulk_load_str(stations, capacity=16)

    start = (0.05, 0.48)
    velocity = (0.02, 0.001)     # units per minute, say
    horizon = 45.0               # minutes

    timeline = continuous_knn(tree, start, velocity, horizon, k=1)
    print(f"route from {start} for {horizon:.0f} min "
          f"({len(timeline)} nearest-station changes):\n")
    print(f"{'from':>7}  {'to':>7}  nearest station")
    for seg in timeline:
        oid = seg.oids[0]
        x, y = stations[oid]
        print(f"{seg.t_from:7.2f}  {seg.t_to:7.2f}  "
              f"#{oid} at ({x:.3f}, {y:.3f})")

    # The timeline is exact: spot-check the midpoint of each segment.
    from repro.queries import nearest_neighbors
    for seg in timeline:
        t = (seg.t_from + seg.t_to) / 2
        pos = (start[0] + velocity[0] * t, start[1] + velocity[1] * t)
        assert nearest_neighbors(tree, pos, k=1)[0].entry.oid == seg.oids[0]
    print("\nspot-check against direct queries: OK")


if __name__ == "__main__":
    main()
