"""Render the paper's explanatory figures as SVG files.

Produces three drawings in the working directory:

* ``nn_validity.svg``     — Figure 7: a 1NN query, its Voronoi-cell
                            validity region and the influence objects;
* ``knn_validity.svg``    — the order-k generalization (k = 5);
* ``window_validity.svg`` — Figure 17: a window query, the inner region
                            and the conservative validity rectangle.

Run:  python examples/draw_validity_regions.py
"""

from repro import Rect, bulk_load_str, uniform_points
from repro.core import compute_nn_validity, compute_window_validity
from repro.viz import render_nn_validity, render_window_validity

UNIVERSE = Rect(0.0, 0.0, 1.0, 1.0)


def main():
    points = uniform_points(400, seed=6)
    tree = bulk_load_str(points, capacity=16)

    nn = compute_nn_validity(tree, (0.42, 0.55), k=1, universe=UNIVERSE)
    render_nn_validity(nn, UNIVERSE, points=points).save("nn_validity.svg")
    print(f"nn_validity.svg      : 1NN region with {nn.num_edges} edges, "
          f"|S_inf| = {nn.num_influence_objects}")

    knn = compute_nn_validity(tree, (0.42, 0.55), k=5, universe=UNIVERSE)
    render_nn_validity(knn, UNIVERSE, points=points).save("knn_validity.svg")
    print(f"knn_validity.svg     : order-5 region with {knn.num_edges} "
          f"edges, |S_inf| = {knn.num_influence_objects}")

    win = compute_window_validity(tree, (0.42, 0.55), 0.18, 0.12,
                                  universe=UNIVERSE)
    render_window_validity(win, UNIVERSE, points=points).save(
        "window_validity.svg")
    print(f"window_validity.svg  : {len(win.result)} results, "
          f"{len(win.inner_influence)} inner + "
          f"{len(win.outer_influence)} outer influence objects")


if __name__ == "__main__":
    main()
