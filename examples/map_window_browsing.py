"""Moving map viewport: location-based *window* queries (paper, §4).

A mapping app keeps the points of interest inside the visible viewport
up to date while the user pans.  The server returns the viewport
contents plus a conservative rectangular validity region for the
viewport *focus*; as long as the focus stays inside it, the displayed
set is provably unchanged.

Run:  python examples/map_window_browsing.py
"""

from repro import LocationServer, MobileClient, Rect, WindowRequest
from repro.datasets import make_greece_like, GR_UNIVERSE
from repro.mobility import random_walk

VIEWPORT_W = 4_000.0   # a 4 km x 3 km viewport, metres
VIEWPORT_H = 3_000.0


def main():
    # Street-segment centroids of a Greece-like road network (the
    # paper's GR dataset, synthesized — see DESIGN.md).
    pois = make_greece_like(n=23_268)
    server = LocationServer.from_points(pois, universe=GR_UNIVERSE)
    client = MobileClient(server)

    # Inspect one response, starting on a road (where the data lives).
    center = tuple(pois[1_000])
    response = server.answer(WindowRequest(center, VIEWPORT_W, VIEWPORT_H))
    detail = response.detail
    print("one viewport refresh:")
    print(f"  points in view    : {len(response.result)}")
    print(f"  inner influence   : {[e.oid for e in detail.inner_influence]}")
    print(f"  outer influence   : {[e.oid for e in detail.outer_influence]}")
    cr = detail.conservative_region
    print(f"  validity rect     : {cr.width / 1000:.2f} km x "
          f"{cr.height / 1000:.2f} km (payload "
          f"{response.region.transfer_bytes()} bytes)")
    exact = detail.exact_region.area()
    if exact > 0:
        print(f"  conservative/exact: {cr.area() / exact:.1%} of the exact "
              f"region's area")
    print()

    # Pan the map along a meandering path at ~100 m per update.
    path = random_walk(GR_UNIVERSE, num_steps=500, speed=100.0,
                       turn_sigma=0.4, seed=5, start=center)
    shown = None
    changes = 0
    for step in path:
        current = {e.oid for e in client.window(step.position,
                                                VIEWPORT_W, VIEWPORT_H)}
        if shown is not None and current != shown:
            changes += 1
        shown = current

    stats = client.stats
    print(f"panned {path.total_distance() / 1000:.0f} km in "
          f"{stats.position_updates} updates")
    print(f"  viewport content changed {changes} times")
    print(f"  server queries: {stats.server_queries} "
          f"({stats.query_saving:.0%} answered from the validity region)")


if __name__ == "__main__":
    main()
