"""Quickstart: location-based nearest-neighbour queries in ten lines.

Builds a server over synthetic points, then moves a client in small
steps.  Most steps are answered from the cached validity region without
contacting the server — the paper's core claim.

Run:  python examples/quickstart.py
"""

from repro import LocationServer, MobileClient, uniform_points


def main():
    # 10,000 points of interest in a unit city, R*-tree built server-side.
    server = LocationServer.from_points(uniform_points(10_000, seed=1))
    client = MobileClient(server)

    position = [0.500, 0.500]
    for step in range(200):
        nearest = client.knn(tuple(position), k=1)[0]
        if step % 40 == 0:
            print(f"step {step:3d}  at ({position[0]:.3f}, {position[1]:.3f})"
                  f"  nearest poi = #{nearest.oid}"
                  f"  ({nearest.x:.3f}, {nearest.y:.3f})")
        position[0] += 0.0004  # drift east, a small step per update
        position[1] += 0.0001

    stats = client.stats
    print()
    print(f"position updates : {stats.position_updates}")
    print(f"server queries   : {stats.server_queries}")
    print(f"answered locally : {stats.cache_answers} "
          f"({stats.query_saving:.0%} saved)")
    print(f"bytes received   : {stats.bytes_received}")


if __name__ == "__main__":
    main()
