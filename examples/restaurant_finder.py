"""The paper's motivating scenario: "the closest restaurants as I move".

A driver follows a random-waypoint route through a clustered city while
continuously tracking the 3 nearest restaurants.  The example shows the
response anatomy — result, influence set, validity region — and
contrasts the server load of the validity-region protocol with naive
re-querying.

Run:  python examples/restaurant_finder.py
"""

from repro import KNNRequest, LocationServer, MobileClient, Rect
from repro.baselines import NaiveClient
from repro.datasets.synthetic import gaussian_clusters
from repro.mobility import random_waypoint

CITY = Rect(0.0, 0.0, 10_000.0, 10_000.0)  # a 10 km x 10 km city, metres


def main():
    # Restaurants cluster in neighbourhoods, as they do in real cities.
    restaurants = gaussian_clusters(5_000, num_clusters=40, spread=0.03,
                                    universe=CITY, seed=7, size_skew=0.8)
    server = LocationServer.from_points(restaurants, universe=CITY)
    client = MobileClient(server)
    naive = NaiveClient(server.tree)

    # One response, dissected.
    response = server.answer(KNNRequest((5_000.0, 5_000.0), k=3))
    print("one response from the server:")
    print(f"  3 nearest restaurants : "
          f"{[e.oid for e in response.neighbors]}")
    print(f"  influence pairs       : {len(response.region.pairs)} "
          f"(bisector half-planes the client checks)")
    region = response.region.polygon()
    print(f"  validity region       : {region.num_edges}-gon, "
          f"area {region.area():,.0f} m^2")
    print(f"  payload               : {response.transfer_bytes()} bytes")
    print()

    # A 40 km/h drive, position update every 2 seconds (~22 m per step).
    route = random_waypoint(CITY, num_steps=400, speed=11.1, dt=2.0, seed=99)
    for step in route:
        mine = client.knn(step.position, k=3)
        theirs = naive.knn(step.position, k=3)
        assert [e.oid for e in mine] == [e.oid for e in theirs], "diverged!"

    print(f"route: {route.total_distance() / 1000:.1f} km, "
          f"{len(route)} position updates")
    print(f"  validity-region client: {client.stats.server_queries:4d} "
          f"server queries ({client.stats.query_saving:.0%} saved)")
    print(f"  naive client          : {naive.server_queries:4d} "
          f"server queries (0% saved)")


if __name__ == "__main__":
    main()
