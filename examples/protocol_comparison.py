"""Compare every moving-kNN protocol the paper surveys (§2) head to head.

Same dataset, same trajectory, four protocols:

* naive            — re-query the server on every position update;
* sr01             — Song & Roussopoulos: cache m > k neighbours;
* tp               — time-parameterized queries (velocity assumed known);
* validity-region  — this paper.

Every protocol's answers are cross-checked for correctness while the
simulation runs.

Run:  python examples/protocol_comparison.py
"""

from repro import Rect, bulk_load_str, uniform_points
from repro.mobility import random_waypoint, simulate_knn_protocols

UNIVERSE = Rect(0.0, 0.0, 1.0, 1.0)


def main():
    tree = bulk_load_str(uniform_points(50_000, seed=3))

    print(f"{'':>10}{'protocol':<20}{'updates':>8}{'queries':>8}"
          f"{'saving':>9}{'bytes':>11}")
    for label, speed in (("walking", 0.0002), ("driving", 0.002)):
        trajectory = random_waypoint(UNIVERSE, num_steps=300, speed=speed,
                                     seed=17)
        reports = simulate_knn_protocols(tree, trajectory, k=2, sr01_m=8)
        for rep in sorted(reports, key=lambda r: r.server_queries):
            print(f"{label:>10}{rep.protocol:<20}"
                  f"{rep.position_updates:>8}{rep.server_queries:>8}"
                  f"{rep.query_saving:>9.1%}{rep.bytes_received:>11}")
        label = ""  # print the speed label once per block


if __name__ == "__main__":
    main()
